"""Tests of the Modbus and HTTP specifications and core applications."""

from __future__ import annotations

from random import Random

import pytest

from repro.core import BoundaryKind, NodeType
from repro.protocols import http, modbus
from repro.wire import WireCodec


class TestModbusSpec:
    def test_graph_sizes_match_paper_scale(self):
        # The paper reports ~47.8 applied transformations at one pass per node,
        # i.e. a graph of roughly that many nodes.
        assert 40 <= modbus.request_graph().stats().node_count <= 55
        assert 38 <= modbus.response_graph().stats().node_count <= 55

    def test_contains_tabular_length_and_counter(self):
        graph = modbus.request_graph()
        kinds = {node.boundary.kind for node in graph.nodes()}
        types = {node.type for node in graph.nodes()}
        assert BoundaryKind.LENGTH in kinds
        assert BoundaryKind.COUNTER in kinds
        assert NodeType.TABULAR in types
        assert NodeType.OPTIONAL in types

    def test_block_names(self):
        assert modbus.block_name(3) == "read_holding_registers"
        with pytest.raises(KeyError):
            modbus.block_name(99)

    @pytest.mark.parametrize("function_code", modbus.FUNCTION_CODES)
    def test_request_round_trip_per_function_code(self, function_code, rng):
        codec = WireCodec(modbus.request_graph(), seed=0)
        message = modbus.random_request(rng, function_code=function_code)
        assert codec.parse(codec.serialize(message)) == message

    @pytest.mark.parametrize("function_code", modbus.FUNCTION_CODES)
    def test_response_round_trip_per_function_code(self, function_code, rng):
        codec = WireCodec(modbus.response_graph(), seed=0)
        message = modbus.random_response(rng, function_code=function_code)
        assert codec.parse(codec.serialize(message)) == message

    def test_known_wire_layout_read_request(self):
        codec = WireCodec(modbus.request_graph(), seed=0)
        message = modbus.build_request(3, transaction_id=1, unit_id=17,
                                       start_address=107, quantity=3)
        data = codec.serialize(message)
        assert data == bytes.fromhex("000100000006110300 6b0003".replace(" ", ""))

    def test_known_wire_layout_write_single_register(self):
        codec = WireCodec(modbus.request_graph(), seed=0)
        message = modbus.build_request(6, transaction_id=2, unit_id=1, address=5, value=321)
        data = codec.serialize(message)
        assert data == bytes.fromhex("0002000000060106000501 41".replace(" ", ""))

    def test_mbap_length_field_is_consistent(self, rng):
        codec = WireCodec(modbus.request_graph(), seed=0)
        for _ in range(10):
            data = codec.serialize(modbus.random_request(rng))
            declared = int.from_bytes(data[4:6], "big")
            assert declared == len(data) - 6

    def test_write_multiple_registers_byte_count(self):
        codec = WireCodec(modbus.request_graph(), seed=0)
        message = modbus.build_request(16, transaction_id=1, start_address=0,
                                       registers=[1, 2, 3])
        data = codec.serialize(message)
        assert data[12] == 3 * 2                        # byte count
        assert int.from_bytes(data[10:12], "big") == 3  # quantity (derived)

    def test_build_request_rejects_unknown_function_code(self):
        with pytest.raises(ValueError):
            modbus.build_request(99)
        with pytest.raises(ValueError):
            modbus.build_response(99)

    def test_matching_response_keeps_transaction_and_code(self, rng):
        request = modbus.random_request(rng, function_code=3)
        response = modbus.matching_response(request, rng)
        assert response.get("response_payload.function_code") == 3
        assert response.get("response_transaction_id") == request.get("request_transaction_id")

    def test_random_conversation_alternates(self, rng):
        conversation = modbus.random_conversation(rng, 3)
        assert [direction for direction, _ in conversation] == [
            "request", "response", "request", "response", "request", "response"
        ]

    def test_realistic_generators_round_trip(self, rng):
        request_codec = WireCodec(modbus.request_graph(), seed=0)
        response_codec = WireCodec(modbus.response_graph(), seed=0)
        for function_code in modbus.FUNCTION_CODES:
            request = modbus.realistic_request(rng, function_code, transaction_id=3)
            response = modbus.realistic_response(rng, function_code, transaction_id=3)
            assert request_codec.parse(request_codec.serialize(request)) == request
            assert response_codec.parse(response_codec.serialize(response)) == response


class TestHttpSpec:
    def test_graph_sizes_match_paper_scale(self):
        # The paper reports ~10.1 applied transformations at one pass per node.
        assert 8 <= http.request_graph().stats().node_count <= 14
        assert 8 <= http.response_graph().stats().node_count <= 14

    def test_contains_optional_repetition_delimited(self):
        graph = http.request_graph()
        types = {node.type for node in graph.nodes()}
        kinds = {node.boundary.kind for node in graph.nodes()}
        assert NodeType.OPTIONAL in types
        assert NodeType.REPETITION in types
        assert BoundaryKind.DELIMITED in kinds

    def test_known_wire_layout_get_request(self):
        codec = WireCodec(http.request_graph(), seed=0)
        message = http.build_request("GET", "/index.html", headers=[("Host", "example.com")])
        data = codec.serialize(message)
        assert data == b"GET /index.html HTTP/1.1\r\nHost: example.com\r\n\r\n"

    def test_known_wire_layout_post_with_body(self):
        codec = WireCodec(http.request_graph(), seed=0)
        message = http.build_request("POST", "/submit", headers=[("Host", "h")], body=b"abc")
        assert codec.serialize(message) == b"POST /submit HTTP/1.1\r\nHost: h\r\n\r\nabc"

    def test_response_wire_layout(self):
        codec = WireCodec(http.response_graph(), seed=0)
        message = http.build_response("200", "OK", headers=[("Connection", "close")],
                                      body=b"hello")
        assert codec.serialize(message) == b"HTTP/1.1 200 OK\r\nConnection: close\r\n\r\nhello"

    def test_request_without_headers(self):
        codec = WireCodec(http.request_graph(), seed=0)
        message = http.build_request("GET", "/")
        assert codec.serialize(message) == b"GET / HTTP/1.1\r\n\r\n"
        assert codec.parse(codec.serialize(message)) == message

    def test_random_request_round_trip(self, rng):
        codec = WireCodec(http.request_graph(), seed=0)
        for _ in range(20):
            message = http.random_request(rng)
            assert codec.parse(codec.serialize(message)) == message

    def test_random_response_round_trip(self, rng):
        codec = WireCodec(http.response_graph(), seed=0)
        for _ in range(20):
            message = http.random_response(rng)
            assert codec.parse(codec.serialize(message)) == message

    def test_body_only_for_body_methods(self, rng):
        for _ in range(20):
            message = http.random_request(rng)
            if message.get("method") not in http.METHODS_WITH_BODY:
                assert not message.has("request_body")

    def test_random_conversation(self, rng):
        conversation = http.random_conversation(rng, 2)
        assert len(conversation) == 4
        assert conversation[0][0] == "request"
        assert conversation[1][0] == "response"
