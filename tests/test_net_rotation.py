"""Mid-session key rotation: control records, plan books, session rotation.

ISSUE 5 acceptance: sessions keep zero-error round-trips across ≥ 3 plan
rotations over both the in-process transport and real TCP, and capture
records carry the correct per-record plan fingerprint.  The rotated capture
feeds ``run_resilience`` end-to-end.
"""

from __future__ import annotations

import asyncio
from random import Random

import pytest

from repro.core.errors import StreamError
from repro.experiments import run_resilience
from repro.net import (
    Capture,
    ObfuscatedClient,
    ObfuscatedServer,
    PlanBook,
    RecordDecoder,
    RotationEvent,
    SessionKey,
    connect_memory,
    derive_session_key,
    encode_rotation,
)
from repro.net.framing import frame_payload
from repro.protocols import modbus, mqtt, registry
from repro.spec import load_plan_text, dump_plan
from repro.transforms.engine import Obfuscator
from repro.wire.serializer import Serializer


def run(coroutine):
    return asyncio.run(coroutine)


def make_book(protocol: str, seeds=(10, 20, 30, 40), passes: int = 1) -> PlanBook:
    return PlanBook([derive_session_key(protocol, passes=passes, seed=seed)
                     for seed in seeds])


def request_for(protocol: str, rng: Random):
    """A request the protocol's responder always answers."""
    if protocol == "mqtt":
        return mqtt.build_pingreq()
    return registry.get(protocol).message_generator(rng)


# ---------------------------------------------------------------------------
# framing-level rotation control records
# ---------------------------------------------------------------------------


def test_record_decoder_follows_rotation_control_records():
    setup = registry.get("modbus")
    plain = setup.reference_graph()
    dialect = Obfuscator(seed=33).obfuscate(setup.graph_factory(), 2).plan().replay(
        setup.graph_factory())
    graphs = {"plain": plain, "dialect": dialect}
    decoder = RecordDecoder(plain, key_resolver=lambda key_id: graphs[key_id])

    message = setup.message_generator(Random(0))
    plain_bytes = frame_payload(Serializer(plain, rng=Random(1)).serialize(message),
                                "record")
    dialect_bytes = frame_payload(
        Serializer(dialect, rng=Random(1)).serialize(message), "record")
    stream = plain_bytes + encode_rotation("dialect") + dialect_bytes
    items = decoder.feed(stream) + decoder.feed_eof()
    kinds = [type(item).__name__ for item in items]
    assert kinds == ["DecodedMessage", "RotationEvent", "DecodedMessage"]
    assert items[1] == RotationEvent("dialect")
    assert items[0].message == message
    assert items[2].message == message
    assert decoder.current_key == "dialect"


def test_rotation_record_without_a_plan_book_is_a_stream_error():
    setup = registry.get("modbus")
    decoder = RecordDecoder(setup.reference_graph())
    with pytest.raises(StreamError, match="plan book"):
        decoder.feed(encode_rotation("whatever"))


def test_rotation_to_an_unknown_key_is_a_stream_error():
    setup = registry.get("modbus")
    book = make_book("modbus", seeds=(10,))
    decoder = RecordDecoder(setup.reference_graph(),
                            key_resolver=lambda key_id: book.get(key_id).request_graph)
    with pytest.raises(StreamError, match="unknown key"):
        decoder.feed(encode_rotation("not-registered"))


def test_local_rotate_refuses_with_buffered_bytes():
    setup = registry.get("modbus")
    decoder = RecordDecoder(setup.reference_graph())
    decoder.feed(b"\x00\x00")  # half a record header
    with pytest.raises(StreamError, match="buffered"):
        decoder.rotate_to(setup.reference_graph())


# ---------------------------------------------------------------------------
# session-level rotation (in-process transport)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("protocol", ["modbus", "http", "dns", "mqtt"])
def test_sessions_survive_three_rotations_in_process(protocol):
    async def scenario():
        keys = [derive_session_key(protocol, passes=1, seed=seed)
                for seed in (10, 20, 30, 40)]
        capture = Capture()
        server = ObfuscatedServer(protocol, plan_book=PlanBook(keys),
                                  capture=capture, capture_received=True)
        client = ObfuscatedClient(protocol, plan_book=PlanBook(keys),
                                  capture=capture)
        connect_memory(client, server)
        rng = Random(1)
        for key in keys[1:] + [None]:
            for _ in range(3):
                reply = await client.request(request_for(protocol, rng))
                assert reply is not None
            if key is not None:
                await client.rotate(key.key_id)
        await client.close()

        stats = server.completed[0]
        assert stats.error is None
        assert stats.received == 12 and stats.sent == 12
        assert stats.rotations == 3
        assert client.stats.rotations == 3

        # Per-record plan fingerprints: 3 messages under each of the 4 keys,
        # requests tagged with the request-direction fingerprint, responses
        # with the response-direction one.
        client_requests = [record for record in capture
                           if record.direction == "request"
                           and record.spans is not None]
        responses = [record for record in capture
                     if record.direction == "response"]
        assert [record.plan_fingerprint for record in client_requests] == [
            key.request_fingerprint for key in keys for _ in range(3)
        ]
        assert [record.plan_fingerprint for record in responses] == [
            key.response_fingerprint for key in keys for _ in range(3)
        ]
        # The sniffer-view copies the server records carry the same tags.
        server_requests = [record for record in capture
                           if record.direction == "request"
                           and record.spans is None]
        assert [record.plan_fingerprint for record in server_requests] == [
            key.request_fingerprint for key in keys for _ in range(3)
        ]
        # Client records and the server's sniffer copies share the session id,
        # so the capture holds two (session, direction) streams, each
        # switching fingerprints three times.
        assert capture.rotation_count() == 2 * 3
        return capture

    capture = run(scenario())
    # JSONL round-trip preserves the per-record fingerprints.
    import os
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "rotated.jsonl")
        capture.to_jsonl(path)
        reloaded = Capture.from_jsonl(path)
        assert reloaded.plan_fingerprints() == capture.plan_fingerprints()


def test_sessions_survive_three_rotations_over_tcp():
    async def scenario():
        keys = [derive_session_key("modbus", passes=1, seed=seed)
                for seed in (50, 60, 70, 80)]
        capture = Capture()
        server = ObfuscatedServer("modbus", plan_book=PlanBook(keys))
        host, port = await server.start_tcp()
        client = ObfuscatedClient("modbus", plan_book=PlanBook(keys),
                                  capture=capture)
        await client.connect_tcp(host, port)
        rng = Random(7)
        transaction = 1
        for key in keys[1:] + [None]:
            for _ in range(2):
                request = modbus.realistic_request(rng, 3, transaction)
                reply = await client.request(request)
                assert (reply.get("response_transaction_id")
                        == request.get("request_transaction_id"))
                transaction += 1
            if key is not None:
                await client.rotate(key.key_id)
        await client.close()
        await server.stop()
        stats = server.completed[0]
        assert stats.error is None
        assert stats.rotations == 3
        assert stats.received == 8 and stats.sent == 8
        fingerprints = [record.plan_fingerprint for record in capture
                        if record.direction == "request"]
        assert fingerprints == [key.request_fingerprint
                                for key in keys for _ in range(2)]

    run(scenario())


def test_rotation_requires_record_framing_and_a_book():
    async def scenario():
        keys = [derive_session_key("modbus", passes=0, seed=1)]
        # modbus is self-framing, but a plan book forces record framing.
        server = ObfuscatedServer("modbus", plan_book=PlanBook(keys))
        assert server.endpoint.request_framing == "record"
        with pytest.raises(StreamError, match="record framing"):
            ObfuscatedServer("modbus", plan_book=PlanBook(keys), framing="native")
        bookless = connect_memory(
            ObfuscatedClient("modbus"), ObfuscatedServer("modbus"))
        with pytest.raises(StreamError, match="plan book"):
            await bookless.rotate("anything")
        await bookless.close()

    run(scenario())


def test_rotate_refuses_with_an_unanswered_request():
    """An in-flight reply would be serialized under the old key: guard it."""
    async def scenario():
        keys = [derive_session_key("modbus", passes=1, seed=seed)
                for seed in (5, 6)]
        client = ObfuscatedClient("modbus", plan_book=PlanBook(keys))
        connect_memory(client, ObfuscatedServer("modbus", plan_book=PlanBook(keys)))
        await client.send(modbus.realistic_request(Random(1), 3, 1))
        with pytest.raises(StreamError, match="unanswered request"):
            await client.rotate(keys[1].key_id)
        # After draining the reply the rotation proceeds.
        assert await client.receive() is not None
        await client.rotate(keys[1].key_id)
        reply = await client.request(modbus.realistic_request(Random(2), 3, 2))
        assert reply is not None
        await client.close()

    run(scenario())


def test_one_way_flows_rotate_with_the_quiescence_guard_released():
    """Sink sessions (no replies) rotate via require_quiescence=False."""
    async def scenario():
        keys = [derive_session_key("modbus", passes=1, seed=seed)
                for seed in (5, 6)]
        server = ObfuscatedServer("modbus", plan_book=PlanBook(keys),
                                  responder=None)
        client = connect_memory(
            ObfuscatedClient("modbus", plan_book=PlanBook(keys)), server)
        rng = Random(9)
        await client.send(modbus.realistic_request(rng, 3, 1))
        with pytest.raises(StreamError, match="unanswered"):
            await client.rotate(keys[1].key_id)
        await client.rotate(keys[1].key_id, require_quiescence=False)
        await client.send(modbus.realistic_request(rng, 3, 2))
        await client.close()
        stats = server.completed[0]
        assert stats.error is None
        assert stats.received == 2 and stats.rotations == 1

    run(scenario())


def test_rotating_to_an_unregistered_key_fails_client_side():
    async def scenario():
        keys = [derive_session_key("modbus", passes=1, seed=5)]
        client = ObfuscatedClient("modbus", plan_book=PlanBook(keys))
        connect_memory(client, ObfuscatedServer("modbus", plan_book=PlanBook(keys)))
        with pytest.raises(KeyError, match="not-there"):
            await client.rotate("not-there")
        await client.close()

    run(scenario())


# ---------------------------------------------------------------------------
# plan books and session keys
# ---------------------------------------------------------------------------


def test_session_key_from_plans_matches_derive():
    derived = derive_session_key("modbus", passes=2, seed=9)
    setup = registry.get("modbus")
    request_plan = Obfuscator(seed=9).obfuscate(
        setup.reference_graph("request"), 2).plan()
    response_plan = Obfuscator(seed=10).obfuscate(
        setup.reference_graph("response"), 2).plan()
    rebuilt = SessionKey.from_plans(setup, request_plan, response_plan)
    assert rebuilt.key_id == derived.key_id
    assert rebuilt.request_fingerprint == derived.request_fingerprint
    assert rebuilt.response_fingerprint == derived.response_fingerprint


def test_session_key_plan_file_exchange_round_trip():
    """The key-distribution path: plans travel as files, key ids agree."""
    setup = registry.get("dns")
    request_plan = Obfuscator(seed=21).obfuscate(
        setup.reference_graph("request"), 1).plan()
    response_plan = Obfuscator(seed=22).obfuscate(
        setup.reference_graph("response"), 1).plan()
    shipped_request = load_plan_text(dump_plan(request_plan))
    shipped_response = load_plan_text(dump_plan(response_plan))
    local = SessionKey.from_plans(setup, request_plan, response_plan)
    remote = SessionKey.from_plans(setup, shipped_request, shipped_response)
    assert remote.key_id == local.key_id
    assert remote.request_fingerprint == local.request_fingerprint


def test_single_direction_protocols_alias_both_directions():
    key = derive_session_key("mqtt", passes=1, seed=3)
    assert key.response_graph is key.request_graph
    assert key.response_fingerprint == key.request_fingerprint


def test_plan_book_rejects_duplicate_keys_and_reports_known_ids():
    key = derive_session_key("modbus", passes=1, seed=2)
    book = PlanBook([key])
    with pytest.raises(StreamError, match="already holds"):
        book.add(key)
    assert key.key_id in book
    assert book.key_ids() == (key.key_id,)
    with pytest.raises(KeyError, match=key.key_id):
        book.get("missing")


def test_two_direction_protocols_require_both_plans():
    setup = registry.get("modbus")
    request_plan = Obfuscator(seed=1).obfuscate(
        setup.reference_graph("request"), 1).plan()
    with pytest.raises(StreamError, match="response direction"):
        SessionKey.from_plans(setup, request_plan)


# ---------------------------------------------------------------------------
# rotated captures feed the resilience experiment end-to-end
# ---------------------------------------------------------------------------


def test_run_resilience_scores_a_rotated_capture():
    async def record_rotated_traffic() -> Capture:
        keys = [derive_session_key("modbus", passes=1, seed=seed)
                for seed in (5, 6, 7, 8)]
        capture = Capture()
        server = ObfuscatedServer("modbus", plan_book=PlanBook(keys),
                                  capture=capture)
        client = ObfuscatedClient("modbus", plan_book=PlanBook(keys),
                                  capture=capture)
        connect_memory(client, server)
        rng = Random(3)
        transaction = 1
        for key in keys[1:] + [None]:
            for _ in range(4):
                await client.request(
                    modbus.realistic_request(rng, 3, transaction))
                transaction += 1
            if key is not None:
                await client.rotate(key.key_id)
        await client.close()
        return capture

    capture = run(record_rotated_traffic())
    assert capture.rotation_count() == 6  # both tagged streams rotate 3×
    report = run_resilience(capture=capture, passes_levels=(1,))
    assert report.protocol == "modbus"
    assert 0.0 <= report.plain.boundary_f1 <= 1.0
    assert 1 in report.obfuscated


def test_run_resilience_rotated_scenario_changes_the_trace():
    static = run_resilience(protocol="modbus", passes_levels=(1,), seed=0)
    rotated = run_resilience(protocol="modbus", passes_levels=(1,), seed=0,
                             rotations=3)
    # The plain trace is identical; the obfuscated trace now mixes dialects.
    assert static.plain.boundary_f1 == rotated.plain.boundary_f1
    assert static.obfuscated[1] != rotated.obfuscated[1]
    with pytest.raises(ValueError, match="negative"):
        run_resilience(protocol="modbus", rotations=-1)
