"""Tests of the PRE substrate, the experiment runner and the resilience study."""

from __future__ import annotations

from random import Random

import pytest

from repro.experiments import TABLE_HEADERS, ExperimentRunner, run_resilience
from repro.pre import (
    cluster_messages,
    infer_fields,
    infer_formats,
    needleman_wunsch,
    pairwise_similarity,
    purity,
    score_boundaries,
    score_inference,
    similarity,
)
from repro.protocols import modbus, registry
from repro.transforms import Obfuscator
from repro.wire import WireCodec


class TestAlignment:
    def test_identical_sequences_align_perfectly(self):
        alignment = needleman_wunsch(b"abcdef", b"abcdef")
        assert alignment.identity() == 1.0
        assert alignment.matches() == 6

    def test_gap_insertion(self):
        alignment = needleman_wunsch(b"abcdef", b"abef")
        assert alignment.length == 6
        assert alignment.identity() == pytest.approx(4 / 6)

    def test_empty_sequences(self):
        assert similarity(b"", b"") == 1.0
        assert needleman_wunsch(b"", b"abc").length == 3

    def test_similarity_symmetric_and_bounded(self):
        a, b = b"GET /index HTTP/1.1", b"GET /other HTTP/1.1"
        assert similarity(a, b) == similarity(b, a)
        assert 0.0 <= similarity(a, b) <= 1.0
        assert similarity(a, a) == 1.0

    def test_pairwise_matrix(self):
        matrix = pairwise_similarity([b"aaaa", b"aaab", b"zzzz"])
        assert matrix[0][0] == 1.0
        assert matrix[0][1] == matrix[1][0]
        assert matrix[0][1] > matrix[0][2]


class TestClustering:
    def test_similar_messages_cluster_together(self):
        messages = [b"GET /a HTTP/1.1", b"GET /b HTTP/1.1", b"\x00\x01\x02\x03", b"\x00\x01\x02\x04"]
        clustering = cluster_messages(messages, threshold=0.6)
        labels = clustering.labels()
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_empty_input(self):
        assert cluster_messages([]).count == 0

    def test_threshold_one_keeps_singletons(self):
        clustering = cluster_messages([b"ab", b"cd"], threshold=1.01)
        assert clustering.count == 2

    def test_purity(self):
        clustering = cluster_messages([b"aaaa", b"aaab", b"zzzz"], threshold=0.6)
        assert purity(clustering, ["x", "x", "y"]) == 1.0
        assert purity(cluster_messages([], threshold=0.5), []) == 0.0


class TestFieldInference:
    def test_constant_prefix_detected(self):
        messages = [b"CMD\x00\x01payload-a", b"CMD\x00\x02payload-b", b"CMD\x00\x03payload-c"]
        inferred = infer_fields(messages, [0, 1, 2])
        assert inferred.reference_boundaries, "expected at least one inferred boundary"
        for index in (0, 1, 2):
            assert inferred.per_message_boundaries[index]

    def test_empty_cluster(self):
        inferred = infer_fields([], [])
        assert inferred.reference_index == -1

    def test_inference_result_accessors(self):
        messages = [b"GET /a HTTP/1.1", b"GET /bb HTTP/1.1", b"\x01\x02\x03\x04\x05"]
        result = infer_formats(messages, similarity_threshold=0.6)
        assert result.cluster_count >= 2
        assert isinstance(result.boundaries_for(0), frozenset)
        assert result.boundaries_for(99) == frozenset()


class TestScoring:
    def test_boundary_scores(self):
        score = score_boundaries(frozenset({2, 4, 9}), {2, 4, 6})
        assert score.true_positives == 2
        assert score.precision == pytest.approx(2 / 3)
        assert score.recall == pytest.approx(2 / 3)
        assert 0 < score.f1 < 1

    def test_boundary_scores_with_tolerance(self):
        score = score_boundaries(frozenset({3}), {4}, tolerance=1)
        assert score.true_positives == 1

    def test_empty_scores(self):
        score = score_boundaries(frozenset(), set())
        assert score.precision == 0.0 and score.recall == 0.0 and score.f1 == 0.0

    def test_score_inference_on_plain_modbus(self):
        rng = Random(0)
        codec = WireCodec(modbus.request_graph(), seed=0)
        trace, spans, types = [], [], []
        for index in range(6):
            message = modbus.realistic_request(rng, 3, transaction_id=index + 1)
            data, message_spans = codec.serialize_with_spans(message)
            trace.append(data)
            spans.append(message_spans)
            types.append(3)
        result = infer_formats(trace)
        score = score_inference(result, spans, types)
        assert score.classification_purity == 1.0
        assert score.boundary_recall > 0.3


class TestExperimentRunner:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner("ftp")

    def test_protocol_registry(self):
        assert set(registry.available()) >= {"http", "modbus", "dns", "mqtt"}
        assert len(TABLE_HEADERS) == 10

    def test_runner_works_for_every_registered_protocol(self):
        for key in registry.available():
            runner = ExperimentRunner(key, seed=0, runs_per_level=1, messages_per_run=2)
            run = runner.run_once(passes=1, run_index=0)
            assert run.protocol == key
            assert run.buffer_size > 0.0

    def test_single_run_measurements(self):
        runner = ExperimentRunner("http", seed=0, runs_per_level=1, messages_per_run=3)
        run = runner.run_once(passes=1, run_index=0)
        assert run.applied > 0
        assert run.normalized.lines > 1.0
        assert run.generation_ms > 0.0
        assert run.buffer_size > 0.0

    def test_reference_potency_cached(self):
        runner = ExperimentRunner("http", seed=0)
        assert runner.reference_potency() is runner.reference_potency()

    def test_table_rows_and_trend(self):
        runner = ExperimentRunner("http", seed=1, runs_per_level=2, messages_per_run=3)
        table = runner.run_table(levels=(1, 2))
        assert set(table) == {1, 2}
        assert table[2].applied.mean > table[1].applied.mean
        assert table[2].lines.mean >= table[1].lines.mean
        row = table[1].table_row()
        assert len(row) == len(TABLE_HEADERS)

    def test_time_series_and_regression(self):
        runner = ExperimentRunner("http", seed=2, runs_per_level=2, messages_per_run=3)
        runs, parse_fit, serialize_fit = runner.time_series(levels=(1, 2))
        assert len(runs) == 4
        assert parse_fit.samples == 4
        assert serialize_fit.samples == 4

    def test_potency_series(self):
        runner = ExperimentRunner("http", seed=3, runs_per_level=1, messages_per_run=2)
        series = runner.potency_series(levels=(1,))
        assert set(series[1]) == {
            "applied", "lines", "structs", "call_graph_size", "call_graph_depth",
            "buffer_size",
        }


class TestResilience:
    def test_resilience_report_shows_degradation(self):
        report = run_resilience(passes_levels=(2,), seed=0, repeats=2,
                                function_codes=(1, 3, 6, 16))
        assert report.plain.boundary_f1 > 0.35
        assert report.obfuscated[2].boundary_f1 < report.plain.boundary_f1
        assert report.degradation(2) > 0.3
        # classification degrades: far more clusters than real message types
        assert report.obfuscated[2].cluster_count > report.plain.cluster_count

    def test_degradation_with_zero_plain_score(self):
        from repro.experiments.resilience import ResilienceReport
        from repro.pre.evaluate import InferenceScore

        empty = InferenceScore(0.0, 0.0, 0.0, 0.0, 0, 0)
        report = ResilienceReport(plain=empty, obfuscated={1: empty})
        assert report.degradation(1) == 0.0
