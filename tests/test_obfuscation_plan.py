"""Obfuscation plans: replay equivalence, serialization, fingerprint caching.

The core property (ISSUE 5 acceptance): for every registry protocol graph ×
obfuscation levels 0–4 × several seeds, the plan extracted from an engine
run, round-tripped through JSON, and replayed on a fresh clone of the plain
graph yields a bit-identical result — same canonical graph signature, same
generated module source, same wire bytes on fuzzed message corpora.  Replay
never consults an RNG, which is what flushes out any transformation
under-recording its random draws.
"""

from __future__ import annotations

from random import Random

import pytest

from repro.core.fingerprint import graph_fingerprint, graph_signature
from repro.codegen import generate_module, generate_module_from_plan
from repro.experiments import ExperimentRunner
from repro.protocols import registry
from repro.spec import dump_plan, load_plan, load_plan_text, save_plan, write_spec
from repro.transforms import (
    ObfuscationPlan,
    PlanError,
    TransformationRecord,
    record_from_dict,
    record_to_dict,
)
from repro.transforms.engine import Obfuscator
from repro.wire.codec import WireCodec
from repro.wire.plan import plan_for

LEVELS = range(5)
SEEDS = (0, 11, 29)


# ---------------------------------------------------------------------------
# the replay-equivalence property
# ---------------------------------------------------------------------------


def test_plan_replay_is_bit_identical(protocol_case):
    """Engine run → plan → JSON → replay on a fresh plain clone: identical."""
    name, factory, generator = protocol_case
    for passes in LEVELS:
        for seed in SEEDS:
            result = Obfuscator(seed=seed).obfuscate(factory(), passes)
            plan = result.plan()
            restored = ObfuscationPlan.from_json(plan.to_json())
            assert restored.fingerprint == plan.fingerprint
            assert len(restored) == result.applied_count

            replayed = restored.replay(factory())
            assert graph_signature(replayed) == graph_signature(result.graph)
            assert replayed.plan_fingerprint == plan.fingerprint

            message_rng = Random(seed * 977 + passes)
            corpus = [generator(message_rng) for _ in range(6)]
            original_codec = WireCodec(result.graph, seed=41)
            replayed_codec = WireCodec(replayed, seed=41)
            for message in corpus:
                data = original_codec.serialize(message)
                assert replayed_codec.serialize(message) == data
                assert replayed_codec.parse(data) == original_codec.parse(data)


def test_plan_replay_generated_module_source_identical(protocol_case):
    """Generated library emitted from plain spec + plan matches the engine run's."""
    name, factory, generator = protocol_case
    result = Obfuscator(seed=5).obfuscate(factory(), 3)
    plan = result.plan()  # stamps result.graph with the plan fingerprint
    original_source = generate_module(result.graph)
    replayed_source = generate_module_from_plan(factory(), plan)
    assert replayed_source == original_source
    assert f"__plan_fingerprint__ = '{plan.fingerprint}'" in original_source


def test_level_zero_plan_replays_to_the_plain_spec_text(protocol_case):
    """An empty plan replays to a graph whose DSL rendering is unchanged."""
    name, factory, generator = protocol_case
    result = Obfuscator(seed=1).obfuscate(factory(), 0)
    plan = result.plan()
    assert len(plan) == 0
    replayed = plan.replay(factory())
    assert write_spec(replayed) == write_spec(factory())


# ---------------------------------------------------------------------------
# record and plan (de)serialization
# ---------------------------------------------------------------------------


def test_record_round_trip_normalizes_tuples():
    records = Obfuscator(seed=3).obfuscate(
        registry.get("modbus").graph_factory(), 2).records
    assert records
    for record in records:
        payload = record_to_dict(record)
        restored = record_from_dict(payload)
        assert restored.transformation == record.transformation
        assert restored.target == record.target
        assert restored.created == record.created
        # Tuples become lists in the canonical form; both replay identically.
        assert record_to_dict(restored) == payload


def test_fingerprint_is_stable_across_json_round_trips():
    result = Obfuscator(seed=9).obfuscate(registry.get("http").graph_factory(), 2)
    plan = result.plan()
    hops = ObfuscationPlan.from_json(
        ObfuscationPlan.from_json(plan.to_json()).to_json(indent=2))
    assert hops.fingerprint == plan.fingerprint


def test_replay_rejects_a_mismatching_source_graph():
    modbus_plan = Obfuscator(seed=2).obfuscate(
        registry.get("modbus").graph_factory(), 1).plan()
    with pytest.raises(PlanError, match="does not match"):
        modbus_plan.replay(registry.get("http").graph_factory())
    # strict=False replays anyway when the node names happen to resolve.
    http_plan = Obfuscator(seed=2).obfuscate(
        registry.get("http").graph_factory(), 1).plan()
    relaxed = http_plan.replay(registry.get("http").graph_factory(), strict=False)
    assert relaxed.plan_fingerprint == http_plan.fingerprint


def test_relaxed_replay_on_a_divergent_source_is_not_stamped():
    """strict=False on a mismatched source must not alias the codec-plan cache."""
    from repro.core.values import Endian

    setup = registry.get("modbus")
    plan = Obfuscator(seed=2).obfuscate(setup.graph_factory(), 1).plan()
    genuine = plan.replay(setup.graph_factory())
    # Same node names, different wire format: a spec revision the plan's
    # source fingerprint no longer matches.
    divergent_source = setup.graph_factory()
    terminal = next(node for node in divergent_source.terminals()
                    if node.endian is Endian.BIG)
    terminal.endian = Endian.LITTLE
    divergent = plan.replay(divergent_source, strict=False)
    assert genuine.plan_fingerprint == plan.fingerprint
    assert divergent.plan_fingerprint is None
    assert graph_signature(divergent) != graph_signature(genuine)
    assert plan_for(divergent) is not plan_for(genuine)


def test_unknown_transformation_and_malformed_payloads():
    from repro.transforms import TransformationCategory

    plain = registry.get("modbus").graph_factory()
    bogus = ObfuscationPlan(
        source=plain.name,
        source_fingerprint=graph_fingerprint(plain),
        records=(TransformationRecord(
            transformation="NoSuchTransform",
            category=TransformationCategory.AGGREGATION,
            target=plain.root.name,
        ),),
    )
    with pytest.raises(PlanError, match="unknown transformation"):
        bogus.replay(registry.get("modbus").graph_factory())
    with pytest.raises(PlanError, match="format"):
        ObfuscationPlan.from_dict({"format": "something-else"})
    with pytest.raises(PlanError, match="JSON"):
        ObfuscationPlan.from_json("{nope")


# ---------------------------------------------------------------------------
# plan files
# ---------------------------------------------------------------------------


def test_plan_file_save_load_round_trip(tmp_path):
    plan = Obfuscator(seed=4).obfuscate(registry.get("dns").graph_factory(), 2).plan()
    path = save_plan(plan, tmp_path / "dns.plan.json")
    loaded = load_plan(path)
    assert loaded.fingerprint == plan.fingerprint
    assert loaded.records == tuple(
        record_from_dict(record_to_dict(record)) for record in plan.records
    )


def test_plan_file_rejects_tampered_content(tmp_path):
    plan = Obfuscator(seed=4).obfuscate(registry.get("modbus").graph_factory(), 1).plan()
    text = dump_plan(plan)
    tampered = text.replace(f'"{plan.source_fingerprint}"', f'"{"0" * 64}"', 1)
    assert tampered != text
    with pytest.raises(PlanError, match="fingerprint mismatch"):
        load_plan_text(tampered)


def test_plan_file_rejects_a_stripped_fingerprint():
    """Deleting the fingerprint field must not bypass the integrity check."""
    import json

    plan = Obfuscator(seed=4).obfuscate(registry.get("modbus").graph_factory(), 1).plan()
    payload = json.loads(dump_plan(plan))
    del payload["fingerprint"]
    with pytest.raises(PlanError, match="no fingerprint"):
        load_plan_text(json.dumps(payload))


# ---------------------------------------------------------------------------
# fingerprint-keyed codec-plan cache
# ---------------------------------------------------------------------------


def test_replays_of_one_plan_share_a_compiled_codec_plan():
    setup = registry.get("modbus")
    plan = Obfuscator(seed=6).obfuscate(setup.graph_factory(), 2).plan()
    first = plan.replay(setup.graph_factory())
    second = plan.replay(setup.graph_factory())
    assert first is not second
    assert first.plan_fingerprint == second.plan_fingerprint
    assert plan_for(first) is plan_for(second)


def test_invalidate_clears_the_stamp_on_in_place_mutation():
    from repro.transforms.const import ConstXor
    from repro.wire.plan import invalidate

    setup = registry.get("modbus")
    plan = Obfuscator(seed=6).obfuscate(setup.graph_factory(), 1).plan()
    graph = plan.replay(setup.graph_factory())
    shared = plan_for(graph)
    transformation = ConstXor()
    node = next(n for n in graph.nodes() if transformation.is_applicable(graph, n))
    transformation.apply(graph, node, Random(8))
    # The stamp is gone: the graph no longer is the format the plan names.
    assert graph.plan_fingerprint is None
    fresh = plan_for(graph)
    assert fresh is not shared
    assert invalidate(graph) is True
    assert invalidate(graph) is False
    # Other replays of the plan keep the shared fingerprint-keyed slot.
    assert plan_for(plan.replay(setup.graph_factory())) is shared


# ---------------------------------------------------------------------------
# experiment runner replay mode
# ---------------------------------------------------------------------------


def test_runner_reuse_plan_replays_run_zero_dialect():
    engine = ExperimentRunner("modbus", seed=13, runs_per_level=3, messages_per_run=3)
    replay = ExperimentRunner("modbus", seed=13, runs_per_level=3, messages_per_run=3,
                              reuse_plan=True)
    engine_runs = engine.run_level(2)
    replay_runs = replay.run_level(2)
    # Run 0 replays the dialect engine mode's run 0 drew; later replay runs
    # reuse it (one potency value per level) while engine mode re-draws.
    assert replay_runs[0].potency == engine_runs[0].potency
    assert replay_runs[0].applied == engine_runs[0].applied
    assert replay_runs[0].buffer_size == engine_runs[0].buffer_size
    assert len({run.potency for run in replay_runs}) == 1


def test_runner_reuse_plan_parallel_matches_sequential():
    sequential = ExperimentRunner("modbus", seed=17, runs_per_level=3,
                                  messages_per_run=3, reuse_plan=True)
    parallel = ExperimentRunner("modbus", seed=17, runs_per_level=3,
                                messages_per_run=3, reuse_plan=True,
                                parallel=True, max_workers=2)
    assert ([run.deterministic_signature() for run in sequential.run_level(1)]
            == [run.deterministic_signature() for run in parallel.run_level(1)])
