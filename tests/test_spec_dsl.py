"""Tests of the specification DSL: lexer, parser and writer."""

from __future__ import annotations

import pytest

from repro.core import BoundaryKind, NodeType, SpecError, ValueKind
from repro.core.values import Endian
from repro.protocols import http, modbus
from repro.spec import parse_spec, tokenize, write_spec
from repro.wire import WireCodec

DEMO_SPEC = '''
protocol demo;

# A demonstration specification exercising every construct.
message demo_msg {
    uint kind : 1;
    uint body_len : 2;
    sequence body length(body_len) {
        text name delimited(": ");
        text value delimited("\\r\\n");
        uint count : 1;
        tabular entries count(count) {
            uint hi : 1;
            uint lo : 1;
        }
    }
    optional extra present_if(kind == 2) {
        uint flags : 4 little;
    }
    repetition words delimited("\\n") {
        text word delimited("\\n");
    }
    bytes payload end;
}
'''


class TestLexer:
    def test_token_kinds(self):
        tokens = tokenize('message x { uint a : 2; }')
        kinds = [token.kind for token in tokens]
        assert kinds == ["KEYWORD", "IDENT", "LBRACE", "KEYWORD", "IDENT", "COLON",
                         "INT", "SEMI", "RBRACE", "EOF"]

    def test_string_escapes(self):
        tokens = tokenize('"a\\r\\n\\t\\\\\\"\\x41\\0"')
        assert tokens[0].value == 'a\r\n\t\\"A\0'

    def test_hex_and_decimal_integers(self):
        tokens = tokenize("255 0xff")
        assert tokens[0].value == 255
        assert tokens[1].value == 255

    def test_comments_are_skipped(self):
        tokens = tokenize("# nothing here\nuint")
        assert tokens[0].kind == "KEYWORD"

    def test_unterminated_string_raises(self):
        with pytest.raises(SpecError):
            tokenize('"abc')

    def test_unknown_character_raises(self):
        with pytest.raises(SpecError):
            tokenize("uint @")

    def test_invalid_escape_raises(self):
        with pytest.raises(SpecError):
            tokenize('"\\q"')

    def test_error_carries_position(self):
        with pytest.raises(SpecError) as error:
            tokenize("uint\n  @")
        assert error.value.line == 2


class TestParser:
    def test_full_specification(self):
        graph = parse_spec(DEMO_SPEC)
        assert graph.name == "demo"
        assert graph.root.name == "demo_msg"
        assert graph.require("kind").value_kind is ValueKind.UINT
        assert graph.require("body").boundary.kind is BoundaryKind.LENGTH
        assert graph.require("entries").type is NodeType.TABULAR
        assert graph.require("extra").presence_ref == "kind"
        assert graph.require("extra").presence_value == 2
        assert graph.require("flags").endian is Endian.LITTLE
        assert graph.require("words").boundary.kind is BoundaryKind.DELIMITED
        assert graph.require("payload").boundary.kind is BoundaryKind.END
        # derived fields carry no origin
        assert graph.require("body_len").origin is None
        assert graph.require("count").origin is None

    def test_multi_node_blocks_get_implicit_item_sequence(self):
        graph = parse_spec(DEMO_SPEC)
        entries = graph.require("entries")
        assert entries.children[0].name == "entries_item"
        assert len(entries.children[0].children) == 2

    def test_parsed_graph_serializes(self):
        graph = parse_spec(DEMO_SPEC)
        codec = WireCodec(graph, seed=0)
        message = {
            "kind": 2,
            "body": {"name": "Host", "value": "example",
                     "entries": [{"hi": 1, "lo": 2}, {"hi": 3, "lo": 4}]},
            "extra": 9,
            "words": ["ab", "cd"],
            "payload": b"xyz",
        }
        assert codec.parse(codec.serialize(message)) == message

    def test_protocol_header_optional(self):
        graph = parse_spec("message m { uint a : 1; }")
        assert graph.name == "m"

    @pytest.mark.parametrize(
        "text",
        [
            "message m { uint a; }",                      # missing boundary
            "message m { uint a : 1 }",                   # missing semicolon
            "message m { sequence s { } }",               # empty block
            "message m { tabular t { uint a : 1; } }",    # missing count
            "message m { unknown a : 1; }",               # unknown keyword
            "uint a : 1;",                                # missing message
            "message m { uint a : 1; } trailing",         # trailing tokens
            "message m { optional o present_if(x = 1) { uint a : 1; } }",  # bad operator
        ],
    )
    def test_syntax_errors(self, text):
        with pytest.raises(SpecError):
            parse_spec(text)

    def test_semantic_errors_are_reported(self):
        # the referenced length field does not exist
        with pytest.raises(Exception):
            parse_spec("message m { sequence s length(nope) { uint a : 1; } }")


class TestWriter:
    @pytest.mark.parametrize(
        "graph_factory",
        [modbus.request_graph, modbus.response_graph, http.request_graph, http.response_graph],
        ids=["modbus_request", "modbus_response", "http_request", "http_response"],
    )
    def test_write_then_parse_preserves_structure(self, graph_factory):
        graph = graph_factory()
        text = write_spec(graph)
        reparsed = parse_spec(text)
        assert [node.name for node in reparsed.nodes()] == [node.name for node in graph.nodes()]
        assert [node.type for node in reparsed.nodes()] == [node.type for node in graph.nodes()]
        assert [node.boundary.kind for node in reparsed.nodes()] == [
            node.boundary.kind for node in graph.nodes()
        ]

    def test_write_demo_round_trip(self):
        graph = parse_spec(DEMO_SPEC)
        assert write_spec(parse_spec(write_spec(graph))) == write_spec(graph)

    def test_writer_rejects_obfuscated_graphs(self):
        from random import Random

        from repro.transforms import Obfuscator

        obfuscated = Obfuscator(seed=0).obfuscate(http.request_graph(), 1).graph
        with pytest.raises(SpecError):
            write_spec(obfuscated)

    def test_writer_escapes_delimiters(self):
        text = write_spec(http.request_graph())
        assert '\\r\\n' in text
