"""Tests of boundaries, nodes and the format graph container."""

from __future__ import annotations

import pytest

from repro.core import (
    Boundary,
    BoundaryKind,
    FieldPath,
    FormatGraph,
    GraphError,
    Node,
    NodeType,
    ValueKind,
    build_graph,
    fixed_bytes,
    optional,
    remaining_bytes,
    repetition,
    sequence,
    tabular,
    uint,
)
from repro.core.graph import is_greedy, parse_window_known, static_size


class TestBoundary:
    def test_constructors(self):
        assert Boundary.fixed(4).kind is BoundaryKind.FIXED
        assert Boundary.delimited(b"\r\n").delimiter == b"\r\n"
        assert Boundary.length("len").ref == "len"
        assert Boundary.counter("count").ref == "count"
        assert Boundary.end().kind is BoundaryKind.END
        assert Boundary.delegated().kind is BoundaryKind.DELEGATED

    def test_fixed_requires_size(self):
        with pytest.raises(GraphError):
            Boundary(BoundaryKind.FIXED)

    def test_fixed_rejects_negative_size(self):
        with pytest.raises(GraphError):
            Boundary.fixed(-1)

    def test_delimited_requires_delimiter(self):
        with pytest.raises(GraphError):
            Boundary(BoundaryKind.DELIMITED)

    def test_length_requires_ref(self):
        with pytest.raises(GraphError):
            Boundary(BoundaryKind.LENGTH)

    def test_end_takes_no_parameter(self):
        with pytest.raises(GraphError):
            Boundary(BoundaryKind.END, size=1)

    def test_fixed_rejects_extra_parameters(self):
        with pytest.raises(GraphError):
            Boundary(BoundaryKind.FIXED, size=1, ref="x")

    def test_with_ref(self):
        assert Boundary.length("a").with_ref("b").ref == "b"
        with pytest.raises(GraphError):
            Boundary.fixed(1).with_ref("b")

    def test_describe(self):
        assert Boundary.fixed(2).describe() == "fixed(2)"
        assert "length" in Boundary.length("x").describe()
        assert Boundary.end().describe() == "end"


class TestNode:
    def test_terminal_requires_value_kind(self):
        with pytest.raises(GraphError):
            Node("x", NodeType.TERMINAL, Boundary.fixed(1))

    def test_terminal_rejects_children(self):
        with pytest.raises(GraphError):
            Node("x", NodeType.TERMINAL, Boundary.fixed(1), value_kind=ValueKind.UINT,
                 children=[uint("y", 1)])

    def test_composite_rejects_value_kind(self):
        with pytest.raises(GraphError):
            Node("x", NodeType.SEQUENCE, Boundary.delegated(), value_kind=ValueKind.UINT)

    def test_child_management(self):
        parent = sequence("p", [uint("a", 1), uint("b", 1)])
        extra = uint("c", 1)
        parent.add_child(extra)
        assert [child.name for child in parent.children] == ["a", "b", "c"]
        parent.insert_child(0, uint("z", 1))
        assert parent.children[0].name == "z"
        assert parent.index_of(extra) == 3
        parent.remove_child(extra)
        assert extra.parent is None
        replacement = uint("r", 1)
        parent.replace_child(parent.children[0], replacement)
        assert parent.children[0] is replacement

    def test_index_of_missing_child_raises(self):
        parent = sequence("p", [uint("a", 1)])
        with pytest.raises(GraphError):
            parent.index_of(uint("other", 1))

    def test_iteration_and_find(self):
        graph = sequence("root", [uint("a", 1), sequence("inner", [uint("b", 1)])])
        names = [node.name for node in graph.iter_subtree()]
        assert names == ["root", "a", "inner", "b"]
        assert graph.find("b").name == "b"
        assert graph.find("missing") is None

    def test_ancestors_depth_root(self):
        graph = sequence("root", [sequence("inner", [uint("leaf", 1)])])
        leaf = graph.find("leaf")
        assert [ancestor.name for ancestor in leaf.ancestors()] == ["inner", "root"]
        assert leaf.depth() == 2
        assert leaf.root() is graph

    def test_clone_is_deep_and_supports_rename(self):
        original = sequence("root", [uint("a", 2)])
        copy = original.clone()
        copy.find("a").boundary = Boundary.fixed(4)
        assert original.find("a").boundary.size == 2
        renamed = original.clone(rename=lambda name: f"{name}_x")
        assert renamed.name == "root_x"
        assert renamed.children[0].name == "a_x"

    def test_referenced_names(self):
        node = Node("n", NodeType.TERMINAL, Boundary.length("len"), value_kind=ValueKind.BYTES)
        assert node.referenced_names() == ["len"]
        opt = optional("o", uint("v", 1), presence_ref="flag", presence_value=1)
        assert "flag" in opt.referenced_names()

    def test_describe_mentions_metadata(self):
        node = uint("x", 2)
        node.mirrored = True
        assert "mirrored" in node.describe()
        assert "x" in repr(node)


class TestFormatGraph:
    def _graph(self):
        return build_graph(sequence("root", [uint("a", 1), uint("b", 2)]), "demo")

    def test_duplicate_names_detected(self):
        graph = FormatGraph(sequence("root", [uint("a", 1), uint("a", 1)]))
        with pytest.raises(GraphError):
            graph.node_map()

    def test_root_with_parent_rejected(self):
        parent = sequence("p", [uint("a", 1)])
        with pytest.raises(GraphError):
            FormatGraph(parent.children[0])

    def test_find_and_require(self):
        graph = self._graph()
        assert graph.find("a").name == "a"
        assert graph.require("b").name == "b"
        with pytest.raises(GraphError):
            graph.require("zz")

    def test_pre_order_index_matches_serialization_order(self):
        graph = self._graph()
        order = graph.pre_order_index()
        assert order["root"] < order["a"] < order["b"]

    def test_ref_targets(self):
        root = sequence("root", [uint("len", 2), fixed_bytes("data", 4)])
        root.children[1].boundary = Boundary.length("len")
        graph = build_graph(root, "demo")
        assert graph.is_ref_target("len")
        assert [node.name for node in graph.referencing_nodes("len")] == ["data"]

    def test_fresh_name_is_unique(self):
        graph = self._graph()
        name = graph.fresh_name("a")
        assert name not in {node.name for node in graph.nodes()}

    def test_clone_independent(self):
        graph = self._graph()
        copy = graph.clone()
        copy.require("a").boundary = Boundary.fixed(9)
        assert graph.require("a").boundary.size == 1

    def test_stats(self):
        stats = self._graph().stats()
        assert stats.node_count == 3
        assert stats.terminal_count == 2
        assert stats.composite_count == 1
        assert stats.max_depth == 1

    def test_terminals_and_composites(self):
        graph = self._graph()
        assert {node.name for node in graph.terminals()} == {"a", "b"}
        assert {node.name for node in graph.composites()} == {"root"}

    def test_repr(self):
        assert "demo" in repr(self._graph())


class TestSizeReasoning:
    def test_static_size_of_fixed_terminal(self):
        assert static_size(uint("a", 4)) == 4

    def test_static_size_of_delimited_terminal_is_unknown(self):
        from repro.core import delimited_text

        assert static_size(delimited_text("a", b" ")) is None

    def test_static_size_of_sequence_sums_children(self):
        assert static_size(sequence("s", [uint("a", 2), uint("b", 3)])) == 5

    def test_static_size_of_repetition_is_unknown(self):
        assert static_size(repetition("r", uint("a", 1))) is None

    def test_parse_window_known(self):
        assert parse_window_known(uint("a", 2))
        assert parse_window_known(remaining_bytes("rest"))
        assert parse_window_known(sequence("s", [uint("a", 2)]))
        # an END-bounded repetition covers the rest of the window: extent known
        assert parse_window_known(repetition("r", uint("a", 1), boundary=Boundary.end()))
        # a terminator-delimited repetition has no up-front extent
        assert not parse_window_known(
            repetition("r2", uint("a2", 1), boundary=Boundary.delimited(b"\r\n"))
        )

    def test_is_greedy_terminals(self):
        assert is_greedy(remaining_bytes("rest"))
        assert not is_greedy(uint("a", 2))

    def test_is_greedy_optional(self):
        assert is_greedy(optional("o", uint("a", 1)))
        assert not is_greedy(optional("o", uint("a", 1), presence_ref="flag", presence_value=1))
        assert is_greedy(optional("o", remaining_bytes("rest"), presence_ref="flag",
                                  presence_value=1))

    def test_is_greedy_sequence_propagates(self):
        assert is_greedy(sequence("s", [uint("a", 1), remaining_bytes("rest")]))
        assert not is_greedy(sequence("s", [uint("a", 1)]))

    def test_is_greedy_repetition_and_tabular(self):
        assert is_greedy(repetition("r", uint("a", 1), boundary=Boundary.end()))
        assert not is_greedy(repetition("r", uint("a", 1), boundary=Boundary.delimited(b"\r\n")))
        assert not is_greedy(tabular("t", uint("a", 1), counter="c"))
