"""Tests of the code generator and generated libraries."""

from __future__ import annotations

from random import Random

import pytest

from repro.codegen import (
    GeneratedCodec,
    accessor_suffix,
    generate_module,
    load_source,
    parser_function,
    sanitize,
    serializer_function,
    struct_class,
    write_module,
)
from repro.core import FieldPath, Message
from repro.protocols import http, modbus
from repro.transforms import Obfuscator
from repro.wire import WireCodec


class TestNaming:
    def test_sanitize_replaces_invalid_characters(self):
        assert sanitize("a-b c") == "a_b_c"
        assert sanitize("9lives").startswith("n_")
        assert sanitize("class") == "class_"

    def test_function_and_struct_names(self):
        assert serializer_function("x") == "_ser_x"
        assert parser_function("x") == "_par_x"
        assert struct_class("x") == "S_x"

    def test_accessor_suffix_skips_indices(self):
        assert accessor_suffix(FieldPath.parse("headers[*].name")) == "headers_name"
        assert accessor_suffix(FieldPath()) == "root"


class TestGeneratedSource:
    def test_module_compiles_and_has_api(self, http_request_graph):
        module = load_source(generate_module(http_request_graph))
        assert callable(module.serialize)
        assert callable(module.parse)
        assert callable(module.parse_ast)

    def test_struct_class_per_node(self, http_request_graph):
        source = generate_module(http_request_graph)
        for node in http_request_graph.nodes():
            assert f"class {struct_class(node.name)}" in source

    def test_serializer_and_parser_function_per_node(self, modbus_request_graph):
        source = generate_module(modbus_request_graph)
        for node in modbus_request_graph.nodes():
            assert f"def {serializer_function(node.name)}(" in source
            assert f"def {parser_function(node.name)}(" in source

    def test_source_grows_with_obfuscation(self, http_request_graph):
        plain = generate_module(http_request_graph)
        obfuscated = generate_module(Obfuscator(seed=0).obfuscate(http_request_graph, 2).graph)
        assert len(obfuscated.splitlines()) > len(plain.splitlines())

    def test_write_module(self, tmp_path, http_request_graph):
        target = write_module(generate_module(http_request_graph), tmp_path / "gen" / "lib.py")
        assert target.exists()
        assert "def parse(" in target.read_text()

    def test_accessors_are_stable_across_obfuscations(self, http_request_graph):
        plain = generate_module(http_request_graph)
        obfuscated = generate_module(Obfuscator(seed=1).obfuscate(http.request_graph(), 2).graph)
        plain_accessors = {line for line in plain.splitlines() if line.startswith("def set_")}
        obfuscated_accessors = {
            line for line in obfuscated.splitlines() if line.startswith("def set_")
        }
        assert plain_accessors == obfuscated_accessors


class TestGeneratedCodecBehaviour:
    @pytest.mark.parametrize("passes", [0, 1, 2])
    def test_round_trip(self, protocol_case, passes, rng):
        _, graph_factory, generator = protocol_case
        graph = graph_factory()
        if passes:
            graph = Obfuscator(seed=passes).obfuscate(graph, passes).graph
        codec = GeneratedCodec(graph, seed=0)
        for _ in range(5):
            message = generator(rng)
            assert codec.parse(codec.serialize(message)) == message

    @pytest.mark.parametrize("passes", [0, 1, 2])
    def test_equivalence_with_interpreted_runtime(self, protocol_case, passes, rng):
        """The generated library and the interpreted codec are interchangeable."""
        _, graph_factory, generator = protocol_case
        graph = graph_factory()
        if passes:
            graph = Obfuscator(seed=7 + passes).obfuscate(graph, passes).graph
        generated = GeneratedCodec(graph, seed=3)
        interpreted = WireCodec(graph, seed=3)
        for _ in range(5):
            message = generator(rng)
            generated_bytes = generated.serialize(message)
            assert interpreted.parse(generated_bytes) == message
            interpreted_bytes = interpreted.serialize(message)
            assert generated.parse(interpreted_bytes) == message

    def test_parse_ast_returns_struct_tree(self, http_request_graph, rng):
        codec = GeneratedCodec(http_request_graph, seed=0)
        message = http.random_request(rng)
        ast = codec.parse_ast(codec.serialize(message))
        assert type(ast).__name__ == struct_class("http_request")
        assert hasattr(ast, "method")

    def test_generated_accessors_set_and_get(self, modbus_request_graph):
        codec = GeneratedCodec(modbus_request_graph, seed=0)
        module = codec.module
        message: dict = {}
        module.set_request_transaction_id(message, 7)
        module.set_request_protocol_id(message, 0)
        module.set_request_payload_request_unit_id(message, 1)
        module.set_request_payload_function_code(message, 6)
        module.set_request_payload_write_single_register_request_block_write_single_register_address(message, 10)
        module.set_request_payload_write_single_register_request_block_write_single_register_value(message, 99)
        data = module.serialize(message)
        parsed = module.parse(data)
        assert module.get_request_payload_function_code(parsed) == 6

    def test_generated_codec_strict_parse(self, modbus_request_graph, rng):
        codec = GeneratedCodec(modbus_request_graph, seed=0)
        message = modbus.random_request(rng)
        data = codec.serialize(message)
        with pytest.raises(Exception):
            codec.parse(data + b"garbage")

    def test_generated_round_trips_helper(self, modbus_request_graph, rng):
        codec = GeneratedCodec(modbus_request_graph, seed=0)
        assert codec.round_trips(modbus.random_request(rng))
