"""Tests of the pluggable protocol registry."""

from __future__ import annotations

from random import Random

import pytest

from repro.core.message import Message
from repro.experiments import ExperimentRunner
from repro.protocols import registry
from repro.protocols.registry import ProtocolRegistryError, ProtocolSetup


def _dummy_setup(key: str) -> ProtocolSetup:
    from repro.core.builder import build_graph, sequence, uint

    def graph_factory():
        return build_graph(sequence("dummy_root", [uint("dummy_field", 1)]), name=key)

    def message_generator(rng: Random) -> Message:
        message = Message()
        message.set("dummy_field", rng.randrange(256))
        return message

    return ProtocolSetup(
        key=key,
        label=key.upper(),
        graph_factory=graph_factory,
        message_generator=message_generator,
    )


class TestRegistry:
    def test_builtin_protocols_registered(self):
        assert set(registry.available()) >= {"http", "modbus", "dns", "mqtt"}

    def test_available_is_sorted(self):
        assert list(registry.available()) == sorted(registry.available())

    def test_get_returns_setup(self):
        setup = registry.get("dns")
        assert setup.key == "dns"
        assert setup.label == "DNS"
        assert callable(setup.graph_factory)
        assert callable(setup.message_generator)

    def test_get_unknown_key_names_available(self):
        with pytest.raises(ProtocolRegistryError, match="http"):
            registry.get("ftp")
        with pytest.raises(ValueError):  # ProtocolRegistryError is a ValueError
            registry.get("ftp")

    def test_register_and_unregister(self):
        setup = _dummy_setup("dummy_proto")
        registry.register(setup)
        try:
            assert "dummy_proto" in registry.available()
            assert registry.get("dummy_proto") is setup
        finally:
            registry.unregister("dummy_proto")
        assert "dummy_proto" not in registry.available()

    def test_duplicate_key_rejected(self):
        registry.register(_dummy_setup("dummy_dup"))
        try:
            with pytest.raises(ProtocolRegistryError, match="already registered"):
                registry.register(_dummy_setup("dummy_dup"))
        finally:
            registry.unregister("dummy_dup")

    def test_duplicate_builtin_rejected(self):
        with pytest.raises(ProtocolRegistryError):
            registry.register(_dummy_setup("http"))

    def test_unregister_unknown_key_rejected(self):
        with pytest.raises(ProtocolRegistryError):
            registry.unregister("never_registered")

    def test_setups_matches_available(self):
        assert [setup.key for setup in registry.setups()] == list(registry.available())

    def test_partial_response_pair_rejected(self):
        base = _dummy_setup("dummy_partial")
        with pytest.raises(ProtocolRegistryError, match="together"):
            ProtocolSetup(
                key=base.key,
                label=base.label,
                graph_factory=base.graph_factory,
                message_generator=base.message_generator,
                response_graph_factory=base.graph_factory,  # generator missing
            )

    def test_directions(self):
        # http/modbus/dns model both directions, mqtt only one.
        assert [d for d, _, _ in registry.get("http").directions()] == ["request", "response"]
        assert [d for d, _, _ in registry.get("dns").directions()] == ["request", "response"]
        assert [d for d, _, _ in registry.get("mqtt").directions()] == ["request"]


class TestRegisteredProtocolsAreRunnable:
    def test_experiment_runner_accepts_registered_protocol(self):
        setup = _dummy_setup("dummy_runnable")
        registry.register(setup)
        try:
            runner = ExperimentRunner("dummy_runnable", seed=0, runs_per_level=1,
                                      messages_per_run=2)
            run = runner.run_once(passes=1, run_index=0)
            assert run.protocol == "dummy_runnable"
        finally:
            registry.unregister("dummy_runnable")

    def test_experiment_runner_rejects_unregistered_protocol(self):
        with pytest.raises(ValueError):
            ExperimentRunner("dummy_gone")
