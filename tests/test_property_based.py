"""Property-based tests (hypothesis) of the core invariants.

The central invariant of the whole framework is invertibility: for any
well-formed logical message and any sequence of transformations, parsing the
serialized bytes yields the original message back.  The properties below
exercise that invariant plus the lower-level building blocks it rests on.
"""

from __future__ import annotations

from random import Random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (
    FieldPath,
    Message,
    Synthesis,
    SynthesisOp,
    ValueKind,
    ValueOp,
    ValueOpKind,
    apply_chain,
    invert_chain,
)
from repro.pre import needleman_wunsch
from repro.protocols import http, modbus
from repro.transforms import Obfuscator
from repro.wire import WireCodec, Window

_SETTINGS = settings(max_examples=60, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


# ---------------------------------------------------------------------------
# value operations
# ---------------------------------------------------------------------------


@given(
    value=st.integers(min_value=0, max_value=0xFFFFFFFF),
    constant=st.integers(min_value=0, max_value=0xFFFFFFFF),
    kinds=st.lists(st.sampled_from(list(ValueOpKind)), min_size=1, max_size=5),
)
@_SETTINGS
def test_integer_codec_chains_are_invertible(value, constant, kinds):
    chain = tuple(ValueOp(kind, constant, bytewise=False, width=4) for kind in kinds)
    obfuscated = apply_chain(value, ValueKind.UINT, chain)
    assert 0 <= obfuscated < 0x100000000
    assert invert_chain(obfuscated, ValueKind.UINT, chain) == value


@given(
    value=st.binary(max_size=64),
    constants=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=4),
    kind=st.sampled_from(list(ValueOpKind)),
)
@_SETTINGS
def test_bytewise_codec_chains_are_invertible(value, constants, kind):
    chain = tuple(ValueOp(kind, constant, bytewise=True) for constant in constants)
    assert invert_chain(apply_chain(value, ValueKind.BYTES, chain), ValueKind.BYTES, chain) == value


@given(
    value=st.integers(min_value=0, max_value=0xFFFF),
    op=st.sampled_from([SynthesisOp.ADD, SynthesisOp.SUB, SynthesisOp.XOR]),
    seed=st.integers(min_value=0, max_value=2**16),
)
@_SETTINGS
def test_integer_synthesis_split_combine(value, op, seed):
    synthesis = Synthesis(op, ValueKind.UINT, width=2)
    first, second = synthesis.split(value, Random(seed))
    assert synthesis.combine(first, second) == value


@given(value=st.binary(max_size=48), seed=st.integers(min_value=0, max_value=2**16))
@_SETTINGS
def test_cat_synthesis_split_combine(value, seed):
    synthesis = Synthesis(SynthesisOp.CAT, ValueKind.BYTES)
    first, second = synthesis.split(value, Random(seed))
    assert synthesis.combine(first, second) == value


# ---------------------------------------------------------------------------
# field paths and messages
# ---------------------------------------------------------------------------

_name = st.text(alphabet="abcdefgh_", min_size=1, max_size=6).filter(
    lambda s: not s.startswith("_") or True
)
_step = st.one_of(_name, st.integers(min_value=0, max_value=5))


@given(first=_name, rest=st.lists(_step, min_size=0, max_size=5))
@_SETTINGS
def test_fieldpath_str_parse_round_trip(first, rest):
    # Logical paths always start with a field name (indices only follow lists).
    path = FieldPath([first, *rest])
    assert FieldPath.parse(str(path)) == path


@given(
    steps=st.lists(_name, min_size=1, max_size=4),
    value=st.one_of(st.integers(), st.binary(max_size=8), st.text(max_size=8)),
)
@_SETTINGS
def test_message_set_then_get(steps, value):
    message = Message()
    path = FieldPath(steps)
    message.set(path, value)
    assert message.get(path) == value
    assert message.has(path)


# ---------------------------------------------------------------------------
# window reader
# ---------------------------------------------------------------------------


@given(data=st.binary(max_size=64), cut=st.integers(min_value=0, max_value=64))
@_SETTINGS
def test_window_read_partition(data, cut):
    window = Window(data)
    take = min(cut, len(data))
    first = window.read(take)
    rest = window.read_rest()
    assert first + rest == data
    assert window.at_end()


# ---------------------------------------------------------------------------
# alignment
# ---------------------------------------------------------------------------


@given(first=st.binary(max_size=24), second=st.binary(max_size=24))
@_SETTINGS
def test_alignment_preserves_sequences(first, second):
    alignment = needleman_wunsch(first, second)
    recovered_first = bytes(b for b in alignment.first if b is not None)
    recovered_second = bytes(b for b in alignment.second if b is not None)
    assert recovered_first == first
    assert recovered_second == second
    assert 0.0 <= alignment.identity() <= 1.0


# ---------------------------------------------------------------------------
# end-to-end invertibility under random obfuscation
# ---------------------------------------------------------------------------


@given(
    seed=st.integers(min_value=0, max_value=500),
    passes=st.integers(min_value=0, max_value=3),
    message_seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_modbus_round_trip_under_random_obfuscation(seed, passes, message_seed):
    graph = Obfuscator(seed=seed).obfuscate(modbus.request_graph(), passes).graph
    codec = WireCodec(graph, seed=seed)
    message = modbus.random_request(Random(message_seed))
    assert codec.parse(codec.serialize(message)) == message


@given(
    seed=st.integers(min_value=0, max_value=500),
    passes=st.integers(min_value=0, max_value=3),
    message_seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_http_round_trip_under_random_obfuscation(seed, passes, message_seed):
    graph = Obfuscator(seed=seed).obfuscate(http.request_graph(), passes).graph
    codec = WireCodec(graph, seed=seed)
    message = http.random_request(Random(message_seed))
    assert codec.parse(codec.serialize(message)) == message
