"""Tests of the CoAP specification and core application."""

from __future__ import annotations

from random import Random

import pytest

from repro.codegen import GeneratedCodec
from repro.core import BoundaryKind, NodeType
from repro.protocols import coap
from repro.transforms import Obfuscator
from repro.wire import WireCodec


class TestCoapSpec:
    def test_graph_scale_comparable_to_the_binary_families(self):
        assert 10 <= coap.message_graph().stats().node_count <= 24

    def test_contains_delimited_repetition_and_end(self):
        graph = coap.message_graph()
        kinds = {node.boundary.kind for node in graph.nodes()}
        types = {node.type for node in graph.nodes()}
        assert BoundaryKind.DELIMITED in kinds  # option list / payload marker
        assert BoundaryKind.LENGTH in kinds     # message length, token, options
        assert BoundaryKind.END in kinds        # payload to end of message
        assert NodeType.REPETITION in types     # the TLV option list

    def test_known_wire_layout_get(self):
        codec = WireCodec(coap.message_graph(), seed=0)
        message = coap.build_request(coap.GET, "sensors/temp",
                                     message_id=0x1234, token=b"\xab")
        # code, message length, id, token, Uri-Path x2, payload marker.
        assert codec.serialize(message) == bytes.fromhex(
            "01" "0014" "1234" "01" "ab"
            "0b" "07" "73656e736f7273"   # delta 11 (Uri-Path), "sensors"
            "00" "04" "74656d70"          # delta 0 (repeat), "temp"
            "ff"
        )

    def test_known_wire_layout_post_with_payload(self):
        codec = WireCodec(coap.message_graph(), seed=0)
        message = coap.build_request(coap.POST, "valve", message_id=1,
                                     payload=b"on", content_format=0)
        assert codec.serialize(message) == bytes.fromhex(
            "02" "0010" "0001" "00"
            "0b" "05" "76616c7665"        # delta 11 (Uri-Path), "valve"
            "01" "01" "00"                 # delta 1 (Content-Format), text/plain
            "ff" "6f6e"
        )

    def test_known_wire_layout_empty_options(self):
        codec = WireCodec(coap.message_graph(), seed=0)
        message = coap.build_response(coap.DELETED, message_id=2)
        # An empty option list is just the payload marker.
        assert codec.serialize(message) == bytes.fromhex("42" "0004" "0002" "00" "ff")

    def test_message_length_is_consistent(self, rng):
        codec = WireCodec(coap.message_graph(), seed=0)
        for _ in range(20):
            data = codec.serialize(coap.random_request(rng))
            assert int.from_bytes(data[1:3], "big") == len(data) - 3

    def test_round_trip_random_requests(self, rng):
        codec = WireCodec(coap.message_graph(), seed=0)
        for _ in range(30):
            message = coap.random_request(rng)
            assert codec.parse(codec.serialize(message)) == message

    def test_round_trip_responses(self, rng):
        codec = WireCodec(coap.message_graph(), seed=0)
        for _ in range(30):
            request = coap.random_request(rng)
            response = coap.respond(request, rng)
            assert response is not None
            assert codec.parse(codec.serialize(response)) == response
            assert (response.get("coap_body.coap_token")
                    == request.get("coap_body.coap_token"))
            assert (response.get("coap_body.coap_message_id")
                    == request.get("coap_body.coap_message_id"))

    def test_option_deltas_recover_absolute_numbers(self):
        message = coap.build_request(
            coap.GET, "sensors/temp", query=("unit=C",), message_id=9)
        numbers = [number for number, _ in coap.decode_options(message)]
        assert numbers == [coap.OPTION_URI_PATH, coap.OPTION_URI_PATH,
                           coap.OPTION_URI_QUERY]
        assert coap.uri_path(message) == "sensors/temp"

    def test_option_deltas_never_reach_the_payload_marker(self, rng):
        for _ in range(50):
            message = coap.random_request(rng)
            for index in range(message.list_length("coap_body.coap_options")):
                delta = message.get(
                    f"coap_body.coap_options[{index}].coap_option_delta")
                assert delta != 0xFF

    def test_unsupported_method_rejected(self):
        with pytest.raises(ValueError):
            coap.build_request(0x45, "x")  # a response code is not a method

    def test_unsupported_response_code_rejected(self):
        with pytest.raises(ValueError):
            coap.build_response(coap.GET)  # a method is not a response code


class TestCoapObfuscation:
    @pytest.mark.parametrize("passes", [0, 1, 2, 3, 4])
    def test_round_trip_under_obfuscation(self, passes, rng):
        result = Obfuscator(seed=5).obfuscate(coap.message_graph(), passes)
        codec = WireCodec(result.graph, seed=5)
        for _ in range(8):
            message = coap.random_request(rng)
            assert codec.parse(codec.serialize(message)) == message

    @pytest.mark.parametrize("passes", [0, 1, 2, 3, 4])
    def test_interpreted_and_generated_codecs_interchangeable(self, passes, rng):
        """Acceptance check: byte-for-byte codec identity at every level."""
        result = Obfuscator(seed=11 + passes).obfuscate(
            coap.message_graph(), passes)
        interpreted = WireCodec(result.graph, seed=42)
        generated = GeneratedCodec(result.graph, seed=42)
        for _ in range(30):
            message = coap.random_request(rng)
            wire = interpreted.serialize(message)
            assert generated.serialize(message) == wire
            assert generated.parse(wire) == message
            assert interpreted.parse(wire) == message

    def test_obfuscated_wire_differs_from_plain(self, rng):
        message = coap.random_request(rng, method=coap.POST)
        plain = WireCodec(coap.message_graph(), seed=0).serialize(message)
        obfuscated = WireCodec(
            Obfuscator(seed=0).obfuscate(coap.message_graph(), 2).graph, seed=0
        ).serialize(message)
        assert plain != obfuscated


class TestCoapSession:
    def test_request_response_session(self):
        import asyncio

        from repro.net import ObfuscatedClient, ObfuscatedServer, connect_memory

        async def scenario():
            server = ObfuscatedServer("coap")
            client = connect_memory(ObfuscatedClient("coap"), server)
            rng = Random(4)
            for _ in range(6):
                request = coap.random_request(rng)
                reply = await client.request(request)
                assert reply.get("coap_code") in coap.RESPONSE_CODES
                assert (reply.get("coap_body.coap_token")
                        == request.get("coap_body.coap_token"))
            await client.close()
            assert server.completed[0].received == 6
            assert server.completed[0].error is None

        asyncio.run(scenario())
