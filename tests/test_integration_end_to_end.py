"""End-to-end integration tests covering the full ProtoObf pipeline."""

from __future__ import annotations

from random import Random

from repro.codegen import GeneratedCodec, generate_module
from repro.metrics import measure_source
from repro.pre import infer_formats, score_inference
from repro.protocols import http, modbus
from repro.spec import parse_spec, write_spec
from repro.transforms import Obfuscator
from repro.wire import WireCodec


def test_spec_to_obfuscated_generated_library_pipeline():
    """Specification text → graph → obfuscation → generated library → messages."""
    spec_text = write_spec(modbus.request_graph())
    graph = parse_spec(spec_text)
    result = Obfuscator(seed=4).obfuscate(graph, 2)
    assert result.applied_count > 0
    codec = GeneratedCodec(result.graph, seed=4)
    rng = Random(9)
    for _ in range(10):
        message = modbus.random_request(rng)
        assert codec.parse(codec.serialize(message)) == message


def test_two_peers_with_same_obfuscation_interoperate():
    """Both communicating applications embed the same generated library."""
    result = Obfuscator(seed=11).obfuscate(http.request_graph(), 2)
    client = GeneratedCodec(result.graph, seed=1)
    server = WireCodec(result.graph, seed=2)
    rng = Random(0)
    for _ in range(5):
        message = http.random_request(rng)
        over_the_wire = client.serialize(message)
        assert server.parse(over_the_wire) == message
        back = server.serialize(message)
        assert client.parse(back) == message


def test_regenerated_obfuscation_changes_wire_but_not_interface():
    """Re-generating with a new seed yields a new protocol version with the same API."""
    rng = Random(5)
    message = modbus.random_request(rng)
    version_a = Obfuscator(seed=100).obfuscate(modbus.request_graph(), 2).graph
    version_b = Obfuscator(seed=200).obfuscate(modbus.request_graph(), 2).graph
    codec_a, codec_b = WireCodec(version_a, seed=0), WireCodec(version_b, seed=0)
    assert codec_a.serialize(message) != codec_b.serialize(message)
    assert codec_a.parse(codec_a.serialize(message)) == codec_b.parse(codec_b.serialize(message))


def test_potency_grows_monotonically_with_passes():
    reference = measure_source(generate_module(http.request_graph()))
    lines = []
    for passes in (1, 2, 3):
        graph = Obfuscator(seed=0).obfuscate(http.request_graph(), passes).graph
        lines.append(measure_source(generate_module(graph)).normalized(reference).lines)
    assert lines == sorted(lines)
    assert lines[0] > 1.0


def test_obfuscation_degrades_trace_inference():
    """Full resilience pipeline on a small trace (plain vs. 2 obfuscations per node)."""
    rng = Random(1)
    workload = [modbus.realistic_request(rng, fc, tid)
                for tid, fc in enumerate((1, 3, 6, 16) * 2, start=1)]
    types = [message.get("request_payload.function_code") for message in workload]

    def capture(graph):
        codec = WireCodec(graph, seed=0)
        trace, spans = [], []
        for message in workload:
            data, message_spans = codec.serialize_with_spans(message)
            trace.append(data)
            spans.append(message_spans)
        return trace, spans

    plain_trace, plain_spans = capture(modbus.request_graph())
    plain = score_inference(infer_formats(plain_trace), plain_spans, types)
    obfuscated_graph = Obfuscator(seed=0).obfuscate(modbus.request_graph(), 2).graph
    obf_trace, obf_spans = capture(obfuscated_graph)
    obfuscated = score_inference(infer_formats(obf_trace), obf_spans, types)
    assert obfuscated.boundary_f1 < plain.boundary_f1
