"""Unit tests of every generic transformation (applicability + behaviour)."""

from __future__ import annotations

from random import Random

import pytest

from repro.core import (
    Boundary,
    BoundaryKind,
    Message,
    NodeType,
    NotApplicableError,
    build_graph,
    delimited_text,
    fixed_bytes,
    optional,
    remaining_bytes,
    repetition,
    sequence,
    tabular,
    uint,
    validate_graph,
)
from repro.protocols import http, modbus
from repro.transforms import (
    BoundaryChange,
    ChildMove,
    ConstAdd,
    ConstSub,
    ConstXor,
    PadInsert,
    ReadFromEnd,
    RepSplit,
    SplitAdd,
    SplitCat,
    SplitSub,
    SplitXor,
    TabSplit,
    by_name,
    default_transformations,
    family,
    transformation_names,
)
from repro.wire import WireCodec


def _simple_graph():
    return build_graph(
        sequence(
            "root",
            [
                uint("kind", 2),
                delimited_text("label", b" "),
                remaining_bytes("payload"),
            ],
        ),
        "simple",
    )


def _roundtrip(graph, message):
    codec = WireCodec(graph, seed=99)
    return codec.parse(codec.serialize(Message.from_dict(message))) == message


SIMPLE_MESSAGE = {"kind": 513, "label": "hello", "payload": b"DATA"}


class TestRegistry:
    def test_all_paper_transformations_registered(self):
        names = set(transformation_names())
        assert names == {
            "SplitAdd", "SplitSub", "SplitXor", "SplitCat", "ConstAdd", "ConstSub",
            "ConstXor", "BoundaryChange", "PadInsert", "ReadFromEnd", "TabSplit",
            "RepSplit", "ChildMove",
        }

    def test_by_name(self):
        assert by_name("SplitAdd").name == "SplitAdd"
        with pytest.raises(KeyError):
            by_name("Nope")

    def test_family_lookup(self):
        assert {t.name for t in family("split")} == {"SplitAdd", "SplitSub", "SplitXor",
                                                     "SplitCat"}
        with pytest.raises(KeyError):
            family("unknown")

    def test_every_transformation_has_challenge_and_category(self):
        for transformation in default_transformations():
            assert transformation.challenge
            assert transformation.category.value in ("aggregation", "ordering")


class TestConstTransformations:
    @pytest.mark.parametrize("transformation", [ConstAdd(), ConstSub(), ConstXor()])
    def test_uint_round_trip(self, transformation):
        graph = _simple_graph()
        node = graph.require("kind")
        assert transformation.is_applicable(graph, node)
        record = transformation.apply(graph, node, Random(0))
        validate_graph(graph)
        assert record.transformation == transformation.name
        assert len(node.codec_chain) == 1
        assert _roundtrip(graph, SIMPLE_MESSAGE)

    def test_bytewise_on_end_bounded_bytes(self):
        graph = _simple_graph()
        node = graph.require("payload")
        transformation = ConstXor()
        assert transformation.is_applicable(graph, node)
        transformation.apply(graph, node, Random(1))
        validate_graph(graph)
        assert _roundtrip(graph, SIMPLE_MESSAGE)

    def test_not_applicable_to_delimited_text(self):
        graph = _simple_graph()
        assert not ConstAdd().is_applicable(graph, graph.require("label"))

    def test_not_applicable_to_composites(self):
        graph = _simple_graph()
        assert not ConstAdd().is_applicable(graph, graph.root)

    def test_applicable_to_derived_length_field(self):
        graph = modbus.request_graph()
        length = graph.require("request_length")
        assert ConstAdd().is_applicable(graph, length)
        ConstAdd().apply(graph, length, Random(2))
        validate_graph(graph)
        message = modbus.random_request(Random(3))
        assert _roundtrip(graph, message.to_dict())

    def test_wire_bytes_change(self):
        graph = _simple_graph()
        plain = WireCodec(_simple_graph(), seed=0).serialize(SIMPLE_MESSAGE)
        ConstXor().apply(graph, graph.require("kind"), Random(5))
        obfuscated = WireCodec(graph, seed=0).serialize(SIMPLE_MESSAGE)
        assert plain != obfuscated


class TestArithmeticSplits:
    @pytest.mark.parametrize("transformation", [SplitAdd(), SplitSub(), SplitXor()])
    def test_split_round_trip_and_structure(self, transformation):
        graph = _simple_graph()
        node = graph.require("kind")
        assert transformation.is_applicable(graph, node)
        record = transformation.apply(graph, node, Random(0))
        validate_graph(graph)
        assert graph.find("kind") is None
        assert len(record.created) == 3
        replacement = graph.require(record.created[0])
        assert replacement.synthesis is not None
        assert len(replacement.children) == 2
        assert _roundtrip(graph, SIMPLE_MESSAGE)

    def test_split_wire_representation_varies_across_messages(self):
        graph = _simple_graph()
        SplitAdd().apply(graph, graph.require("kind"), Random(0))
        codec = WireCodec(graph, seed=1)
        outputs = {codec.serialize(SIMPLE_MESSAGE) for _ in range(8)}
        assert len(outputs) > 1, "split shares must be drawn per message"
        for data in outputs:
            assert codec.parse(data) == SIMPLE_MESSAGE

    def test_not_applicable_to_text(self):
        graph = _simple_graph()
        assert not SplitAdd().is_applicable(graph, graph.require("label"))

    def test_not_applicable_to_derived_fields(self):
        graph = modbus.request_graph()
        assert not SplitAdd().is_applicable(graph, graph.require("request_length"))

    def test_not_applicable_twice(self):
        graph = _simple_graph()
        node = graph.require("kind")
        record = SplitAdd().apply(graph, node, Random(0))
        share = graph.require(record.created[1])
        assert not SplitAdd().is_applicable(graph, share)

    def test_not_applicable_to_presence_reference(self):
        graph = modbus.request_graph()
        assert not SplitXor().is_applicable(graph, graph.require("function_code"))


class TestSplitCat:
    def test_fixed_bytes_split(self):
        graph = build_graph(sequence("root", [fixed_bytes("raw", 6)]), "demo")
        node = graph.require("raw")
        assert SplitCat().is_applicable(graph, node)
        record = SplitCat().apply(graph, node, Random(0))
        validate_graph(graph)
        parts = [graph.require(name) for name in record.created[1:]]
        assert sum(part.boundary.size for part in parts) == 6
        assert _roundtrip(graph, {"raw": b"abcdef"})

    def test_fixed_too_small_not_applicable(self):
        graph = build_graph(sequence("root", [fixed_bytes("raw", 1)]), "demo")
        assert not SplitCat().is_applicable(graph, graph.require("raw"))

    def test_delimited_text_split(self):
        graph = _simple_graph()
        node = graph.require("label")
        assert SplitCat().is_applicable(graph, node)
        SplitCat().apply(graph, node, Random(0))
        validate_graph(graph)
        assert _roundtrip(graph, SIMPLE_MESSAGE)

    def test_end_bounded_bytes_split(self):
        graph = _simple_graph()
        SplitCat().apply(graph, graph.require("payload"), Random(0))
        validate_graph(graph)
        assert _roundtrip(graph, SIMPLE_MESSAGE)
        assert _roundtrip(graph, {**SIMPLE_MESSAGE, "payload": b""})

    def test_not_applicable_to_uint(self):
        graph = _simple_graph()
        assert not SplitCat().is_applicable(graph, graph.require("kind"))


class TestBoundaryChange:
    def test_delimited_terminal(self):
        graph = _simple_graph()
        node = graph.require("label")
        assert BoundaryChange().is_applicable(graph, node)
        record = BoundaryChange().apply(graph, node, Random(0))
        validate_graph(graph)
        assert node.boundary.kind is BoundaryKind.LENGTH
        assert len(record.created) == 2
        assert _roundtrip(graph, SIMPLE_MESSAGE)
        # the delimiter no longer appears on the wire for that field
        data = WireCodec(graph, seed=0).serialize(SIMPLE_MESSAGE)
        assert b"hello " not in data

    def test_delimited_repetition(self):
        graph = http.request_graph()
        node = graph.require("request_headers")
        assert BoundaryChange().is_applicable(graph, node)
        BoundaryChange().apply(graph, node, Random(0))
        validate_graph(graph)
        message = http.random_request(Random(1))
        assert _roundtrip(graph, message.to_dict())

    def test_enables_const_and_mirror(self):
        graph = _simple_graph()
        node = graph.require("label")
        assert not ConstXor().is_applicable(graph, node)
        assert not ReadFromEnd().is_applicable(graph, node)
        BoundaryChange().apply(graph, node, Random(0))
        assert ConstXor().is_applicable(graph, node)
        assert ReadFromEnd().is_applicable(graph, node)
        ConstXor().apply(graph, node, Random(1))
        ReadFromEnd().apply(graph, node, Random(2))
        validate_graph(graph)
        assert _roundtrip(graph, SIMPLE_MESSAGE)

    def test_not_applicable_to_fixed(self):
        graph = _simple_graph()
        assert not BoundaryChange().is_applicable(graph, graph.require("kind"))


class TestPadInsert:
    def test_pad_inserted_and_ignored(self):
        graph = _simple_graph()
        record = PadInsert().apply(graph, graph.root, Random(0))
        validate_graph(graph)
        pad = graph.require(record.created[0])
        assert pad.is_pad and pad.origin is None
        assert _roundtrip(graph, SIMPLE_MESSAGE)

    def test_pad_never_first_position(self):
        graph = _simple_graph()
        for seed in range(10):
            working = _simple_graph()
            record = PadInsert().apply(working, working.root, Random(seed))
            assert record.parameters["position"] >= 1

    def test_pad_not_after_greedy_child(self):
        graph = _simple_graph()
        # 'payload' (END boundary) is the last child: the pad may not follow it.
        positions = {PadInsert().apply(_simple_graph(), _simple_graph().root, Random(s))
                     .parameters["position"] for s in range(12)}
        assert max(positions) <= 2

    def test_not_applicable_when_first_child_is_greedy(self):
        graph = build_graph(sequence("root", [remaining_bytes("rest")]), "demo")
        assert not PadInsert().is_applicable(graph, graph.root)

    def test_pad_changes_wire_but_not_logic(self):
        graph = _simple_graph()
        PadInsert().apply(graph, graph.root, Random(0))
        codec = WireCodec(graph, seed=0)
        first = codec.serialize(SIMPLE_MESSAGE)
        second = codec.serialize(SIMPLE_MESSAGE)
        assert first != second  # random padding bytes
        assert codec.parse(first) == SIMPLE_MESSAGE
        assert codec.parse(second) == SIMPLE_MESSAGE


class TestReadFromEnd:
    def test_fixed_terminal_mirrored(self):
        graph = _simple_graph()
        node = graph.require("kind")
        assert ReadFromEnd().is_applicable(graph, node)
        ReadFromEnd().apply(graph, node, Random(0))
        validate_graph(graph)
        data = WireCodec(graph, seed=0).serialize(SIMPLE_MESSAGE)
        assert data[:2] == (513).to_bytes(2, "big")[::-1]
        assert _roundtrip(graph, SIMPLE_MESSAGE)

    def test_end_bounded_payload_mirrored(self):
        graph = _simple_graph()
        ReadFromEnd().apply(graph, graph.require("payload"), Random(0))
        data = WireCodec(graph, seed=0).serialize(SIMPLE_MESSAGE)
        assert data.endswith(b"ATAD")
        assert _roundtrip(graph, SIMPLE_MESSAGE)

    def test_not_applicable_to_delimited(self):
        graph = _simple_graph()
        assert not ReadFromEnd().is_applicable(graph, graph.require("label"))

    def test_not_applicable_twice(self):
        graph = _simple_graph()
        node = graph.require("kind")
        ReadFromEnd().apply(graph, node, Random(0))
        assert not ReadFromEnd().is_applicable(graph, node)

    def test_composite_with_static_size_mirrored(self):
        graph = modbus.request_graph()
        block = graph.require("read_coils_request")
        assert ReadFromEnd().is_applicable(graph, block)
        ReadFromEnd().apply(graph, block, Random(0))
        validate_graph(graph)
        message = modbus.build_request(1, transaction_id=5, start_address=16, quantity=3)
        assert _roundtrip(graph, message.to_dict())


class TestTabSplitAndRepSplit:
    def test_tabsplit_on_modbus_registers(self):
        graph = modbus.request_graph()
        node = graph.require("write_multiple_registers_registers")
        assert TabSplit().is_applicable(graph, node)
        record = TabSplit().apply(graph, node, Random(0))
        validate_graph(graph)
        assert record.parameters["columns"] == 2
        message = modbus.build_request(
            16, transaction_id=9, start_address=2, registers=[0x0102, 0x0304, 0x0506]
        )
        codec = WireCodec(graph, seed=0)
        data = codec.serialize(message)
        assert codec.parse(data) == message
        # column layout: all high bytes then all low bytes
        assert b"\x01\x03\x05\x02\x04\x06" in data

    def test_tabsplit_not_applicable_to_single_column(self):
        graph = modbus.request_graph()
        assert not TabSplit().is_applicable(
            graph, graph.require("write_multiple_coils_data")
        )

    def test_repsplit_on_http_headers(self):
        graph = http.request_graph()
        node = graph.require("request_headers")
        assert RepSplit().is_applicable(graph, node)
        record = RepSplit().apply(graph, node, Random(0))
        validate_graph(graph)
        assert record.parameters["columns"] == 2
        message = http.build_request(
            "GET", "/index", headers=[("Host", "a"), ("Accept", "b"), ("X", "c")]
        )
        codec = WireCodec(graph, seed=0)
        data = codec.serialize(message)
        assert codec.parse(data) == message
        # all names now precede all values
        assert data.index(b"Accept") < data.index(b"a\r\n")

    def test_repsplit_not_applicable_to_scalar_repetition(self):
        graph = build_graph(
            sequence("root", [repetition("items", uint("x", 1), boundary=Boundary.end())]),
            "demo",
        )
        assert not RepSplit().is_applicable(graph, graph.require("items"))

    def test_cross_reference_blocks_split(self):
        element = sequence(
            "entry",
            [uint("entry_len", 2), fixed_bytes("entry_data", 2)],
        )
        element.children[1].boundary = Boundary.length("entry_len")
        graph = build_graph(
            sequence("root", [uint("n", 1), tabular("entries", element, counter="n")]),
            "demo",
        )
        assert not TabSplit().is_applicable(graph, graph.require("entries"))


class TestChildMove:
    def test_swap_changes_wire_order(self):
        graph = _simple_graph()
        node = graph.root
        assert ChildMove().is_applicable(graph, node)
        applied = False
        for seed in range(10):
            working = _simple_graph()
            try:
                ChildMove().apply(working, working.root, Random(seed))
            except NotApplicableError:
                continue
            validate_graph(working)
            applied = True
            assert _roundtrip(working, SIMPLE_MESSAGE)
        assert applied

    def test_invalid_swaps_are_reverted(self):
        # Moving the greedy END payload before other fields must be rejected, so
        # every successful permutation keeps the graph valid.
        for seed in range(12):
            graph = _simple_graph()
            try:
                ChildMove().apply(graph, graph.root, Random(seed))
            except NotApplicableError:
                continue
            validate_graph(graph)

    def test_not_applicable_to_single_child_sequence(self):
        graph = build_graph(sequence("root", [uint("only", 1)]), "demo")
        assert not ChildMove().is_applicable(graph, graph.root)

    def test_dependency_preserved_in_modbus(self):
        graph = modbus.request_graph()
        payload = graph.require("request_payload")
        for seed in range(6):
            working = modbus.request_graph()
            try:
                ChildMove().apply(working, working.require("request_payload"), Random(seed))
            except NotApplicableError:
                continue
            validate_graph(working)
            message = modbus.random_request(Random(seed + 50))
            assert _roundtrip(working, message.to_dict())
        assert payload is not None
