"""Tests of the logical message model, the graph builder and graph validation."""

from __future__ import annotations

import pytest

from repro.core import (
    Boundary,
    FieldPath,
    GraphError,
    Message,
    MessageError,
    Node,
    NodeType,
    Synthesis,
    SynthesisOp,
    ValueKind,
    ValueOp,
    ValueOpKind,
    build_graph,
    delimited_text,
    fixed_bytes,
    optional,
    remaining_bytes,
    repetition,
    sequence,
    tabular,
    uint,
    validate_graph,
)
from repro.core.builder import assign_origins
from repro.core.graph import FormatGraph


class TestMessage:
    def test_set_and_get_nested(self):
        message = Message()
        message.set("a.b.c", 5)
        assert message.get("a.b.c") == 5
        assert message.get("a.b") == {"c": 5}

    def test_get_missing_returns_default(self):
        message = Message()
        assert message.get("x.y") is None
        assert message.get("x.y", 7) == 7

    def test_has_distinguishes_missing_from_none(self):
        message = Message()
        message.set("a", None)
        assert message.has("a")
        assert not message.has("b")

    def test_list_auto_extension(self):
        message = Message()
        message.set("items[2].name", "c")
        assert message.get("items") == [None, None, {"name": "c"}]
        message.set("items[0].name", "a")
        assert message.get("items[0].name") == "a"

    def test_scalar_list_assignment(self):
        message = Message()
        message.set("data[1]", 9)
        assert message.get("data") == [None, 9]

    def test_set_rejects_unbound_index(self):
        with pytest.raises(MessageError):
            Message().set("items[*].name", 1)

    def test_set_rejects_root(self):
        with pytest.raises(MessageError):
            Message().set(FieldPath(), 1)

    def test_set_type_mismatch(self):
        message = Message()
        message.set("a", [1, 2])
        with pytest.raises(MessageError):
            message.set("a.b", 1)

    def test_delete(self):
        message = Message.from_dict({"a": {"b": 1}, "items": [1, 2]})
        message.delete("a.b")
        assert not message.has("a.b")
        message.delete("items[0]")
        assert message.get("items") == [None, 2]
        message.delete("missing")  # no-op

    def test_list_length(self):
        message = Message.from_dict({"items": [1, 2, 3]})
        assert message.list_length("items") == 3
        assert message.list_length("absent") == 0
        message.set("scalar", 5)
        with pytest.raises(MessageError):
            message.list_length("scalar")

    def test_copy_and_to_dict_are_deep(self):
        message = Message.from_dict({"a": {"b": [1]}})
        copy = message.copy()
        copy.set("a.b[0]", 99)
        assert message.get("a.b[0]") == 1
        exported = message.to_dict()
        exported["a"]["b"][0] = 50
        assert message.get("a.b[0]") == 1

    def test_leaves(self):
        message = Message.from_dict({"a": 1, "items": [{"x": 2}], "b": {"c": 3}})
        leaves = {str(path): value for path, value in message.leaves()}
        assert leaves == {"a": 1, "items[0].x": 2, "b.c": 3}

    def test_equality(self):
        assert Message.from_dict({"a": 1}) == Message.from_dict({"a": 1})
        assert Message.from_dict({"a": 1}) == {"a": 1}
        assert Message.from_dict({"a": 1}) != Message.from_dict({"a": 2})

    def test_messages_are_unhashable(self):
        with pytest.raises(TypeError):
            hash(Message())


class TestOriginAssignment:
    def test_sequence_members_get_dotted_paths(self):
        graph = build_graph(
            sequence("root", [uint("a", 1), sequence("grp", [uint("b", 1)])]), "demo"
        )
        assert str(graph.require("a").origin) == "a"
        assert str(graph.require("b").origin) == "grp.b"

    def test_repetition_children_are_transparent_with_index(self):
        graph = build_graph(
            sequence(
                "root",
                [repetition("items", sequence("item", [uint("x", 1)]),
                            boundary=Boundary.end())],
            ),
            "demo",
        )
        assert str(graph.require("items").origin) == "items"
        assert str(graph.require("x").origin) == "items[*].x"
        assert str(graph.require("item").origin) == "items[*]"

    def test_optional_children_are_transparent(self):
        graph = build_graph(
            sequence("root", [uint("flag", 1),
                              optional("body", remaining_bytes("content"))]),
            "demo",
        )
        assert str(graph.require("content").origin) == "body"

    def test_derived_length_fields_have_no_origin(self):
        root = sequence("root", [uint("len", 2),
                                 fixed_bytes("data", 4)])
        root.children[1].boundary = Boundary.length("len")
        graph = build_graph(root, "demo")
        assert graph.require("len").origin is None
        assert graph.require("data").origin is not None

    def test_counter_fields_have_no_origin(self):
        graph = build_graph(
            sequence("root", [uint("count", 1),
                              tabular("items", uint("value", 2), counter="count")]),
            "demo",
        )
        assert graph.require("count").origin is None


class TestValidation:
    def _valid(self):
        return build_graph(sequence("root", [uint("a", 1)]), "demo")

    def test_valid_graph_passes(self):
        validate_graph(self._valid())

    def test_sequence_requires_children(self):
        graph = FormatGraph(Node("root", NodeType.SEQUENCE, Boundary.delegated(),
                                 children=[uint("a", 1)]))
        graph.root.children = []
        with pytest.raises(GraphError):
            validate_graph(graph)

    def test_optional_requires_single_child(self):
        node = optional("o", uint("a", 1))
        node.add_child(uint("b", 1))
        with pytest.raises(GraphError):
            validate_graph(FormatGraph(sequence("root", [node])))

    def test_uint_requires_fixed_boundary(self):
        bad = Node("u", NodeType.TERMINAL, Boundary.end(), value_kind=ValueKind.UINT)
        with pytest.raises(GraphError):
            validate_graph(FormatGraph(sequence("root", [bad])))

    def test_tabular_requires_counter_boundary(self):
        bad = Node("t", NodeType.TABULAR, Boundary.end(), children=[uint("a", 1)])
        with pytest.raises(GraphError):
            validate_graph(FormatGraph(sequence("root", [uint("c", 1), bad])))

    def test_counter_reference_must_exist(self):
        graph = FormatGraph(sequence("root", [tabular("t", uint("a", 1), counter="nope")]))
        with pytest.raises(GraphError):
            validate_graph(graph)

    def test_reference_must_precede_user(self):
        data = fixed_bytes("data", 4)
        data.boundary = Boundary.length("len")
        root = sequence("root", [data, uint("len", 2)])
        with pytest.raises(GraphError):
            validate_graph(FormatGraph(root))

    def test_reference_must_be_terminal(self):
        inner = sequence("inner", [uint("a", 1)])
        data = fixed_bytes("data", 4)
        data.boundary = Boundary.length("inner")
        with pytest.raises(GraphError):
            validate_graph(FormatGraph(sequence("root", [inner, data])))

    def test_reference_cannot_cross_repetition(self):
        counter_inside = repetition("rep", uint("len", 2), boundary=Boundary.end())
        data = fixed_bytes("data", 4)
        data.boundary = Boundary.length("len")
        # the repetition is greedy, so place the data before it to isolate the scoping error
        with pytest.raises(GraphError):
            validate_graph(FormatGraph(sequence("root", [counter_inside, data])))

    def test_length_field_must_be_uint(self):
        length = delimited_text("len", b" ")
        data = fixed_bytes("data", 4)
        data.boundary = Boundary.length("len")
        with pytest.raises(GraphError):
            validate_graph(FormatGraph(sequence("root", [length, data])))

    def test_length_field_cannot_be_shared(self):
        length = uint("len", 2)
        first = fixed_bytes("a", 4)
        first.boundary = Boundary.length("len")
        second = fixed_bytes("b", 4)
        second.boundary = Boundary.length("len")
        with pytest.raises(GraphError):
            validate_graph(FormatGraph(sequence("root", [length, first, second])))

    def test_counter_can_be_shared(self):
        count = uint("count", 1)
        first = tabular("t1", uint("x", 1), counter="count")
        second = tabular("t2", uint("y", 1), counter="count")
        graph = build_graph(sequence("root", [count, first, second]), "demo")
        validate_graph(graph)

    def test_greedy_node_must_be_last(self):
        root = sequence("root", [remaining_bytes("rest"), uint("after", 1)])
        with pytest.raises(GraphError):
            validate_graph(FormatGraph(root))

    def test_greedy_node_allowed_in_tail(self):
        graph = build_graph(sequence("root", [uint("a", 1), remaining_bytes("rest")]), "demo")
        validate_graph(graph)

    def test_greedy_inside_length_window_is_allowed(self):
        length = uint("len", 2)
        inner = sequence("inner", [remaining_bytes("rest")], boundary=Boundary.length("len"))
        graph = build_graph(sequence("root", [length, inner, uint("after", 1)]), "demo")
        validate_graph(graph)

    def test_mirrored_delimited_rejected(self):
        node = delimited_text("t", b" ")
        node.mirrored = True
        with pytest.raises(GraphError):
            validate_graph(FormatGraph(sequence("root", [node])))

    def test_bytewise_chain_on_delimited_rejected(self):
        node = delimited_text("t", b" ")
        node.codec_chain = (ValueOp(ValueOpKind.XOR, 3, bytewise=True),)
        with pytest.raises(GraphError):
            validate_graph(FormatGraph(sequence("root", [node])))

    def test_integer_chain_width_must_match(self):
        node = uint("t", 2)
        node.codec_chain = (ValueOp(ValueOpKind.ADD, 3, bytewise=False, width=1),)
        with pytest.raises(GraphError):
            validate_graph(FormatGraph(sequence("root", [node])))

    def test_synthesis_requires_two_value_children(self):
        bad = Node(
            "syn",
            NodeType.SEQUENCE,
            Boundary.delegated(),
            children=[uint("only", 2)],
            origin=FieldPath.parse("field"),
            synthesis=Synthesis(SynthesisOp.ADD, ValueKind.UINT, width=2),
        )
        with pytest.raises(GraphError):
            validate_graph(FormatGraph(sequence("root", [bad])))

    def test_pad_with_origin_rejected(self):
        pad = Node("p", NodeType.TERMINAL, Boundary.fixed(2), value_kind=ValueKind.BYTES,
                   is_pad=True, origin=FieldPath.parse("p"))
        with pytest.raises(GraphError):
            validate_graph(FormatGraph(sequence("root", [pad])))

    def test_stale_parent_link_detected(self):
        root = sequence("root", [uint("a", 1)])
        root.children[0].parent = None
        with pytest.raises(GraphError):
            validate_graph(FormatGraph(root))

    def test_protocol_graphs_validate(self, protocol_case):
        _, graph_factory, _ = protocol_case
        validate_graph(graph_factory())
