"""The deterministic session-resilience layer: clocks, deadlines, retries,
breakers, reconnect-with-rotation-resume, graceful drain, teardown races.

Every timing-sensitive scenario runs on a :class:`VirtualClock` — manually
advanced, no real sleeps — so idle reaping, drain deadlines and backoff
schedules are tested flake-free and in microseconds.
"""

from __future__ import annotations

import asyncio
from random import Random

import pytest

from repro.net import (
    ChaosSchedule,
    CircuitBreaker,
    CircuitOpen,
    Deadline,
    DeadlineExceeded,
    FaultPlan,
    FaultPlanError,
    ObfuscatedClient,
    ObfuscatedProxy,
    ObfuscatedServer,
    PlanBook,
    ResilienceTrace,
    RetriesExhausted,
    RetryPolicy,
    TimeoutConfig,
    VirtualClock,
    connect_memory,
    derive_session_key,
    memory_pipe,
)
from repro.net.resilience import ResilienceError, retry_operation
from repro.protocols import registry


def run(coroutine):
    return asyncio.run(coroutine)


def virtual(coroutine_factory):
    """Drive a clock-taking scenario to completion on a fresh VirtualClock."""
    clock = VirtualClock()

    async def scenario():
        return await clock.run(coroutine_factory(clock))

    return asyncio.run(scenario())


# ---------------------------------------------------------------------------
# primitives: retry schedules, deadlines, breakers, traces
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_same_seed_replays_the_identical_schedule(self):
        policy = RetryPolicy(attempts=6, base_delay=0.05, seed=42)
        assert policy.delays() == policy.delays()
        assert policy.delays() == policy.reseed(42).delays()

    def test_different_seeds_draw_different_jitter(self):
        base = RetryPolicy(attempts=6, base_delay=0.05, seed=1)
        assert base.delays() != base.reseed(2).delays()

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(attempts=8, base_delay=0.1, multiplier=2.0,
                             max_delay=0.5, jitter=0.0, seed=0)
        assert policy.delays() == (0.1, 0.2, 0.4, 0.5, 0.5, 0.5, 0.5)

    def test_validation(self):
        with pytest.raises(ResilienceError):
            RetryPolicy(attempts=0)
        with pytest.raises(ResilienceError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ResilienceError):
            RetryPolicy(multiplier=0.5)

    def test_retry_operation_exhausts_with_typed_error(self):
        async def scenario(clock):
            calls = []

            async def always_fails():
                calls.append(1)
                raise ConnectionResetError("still down")

            trace = ResilienceTrace()
            with pytest.raises(RetriesExhausted) as err:
                await retry_operation(always_fails,
                                      RetryPolicy(attempts=3, base_delay=1.0,
                                                  jitter=0.0, seed=0),
                                      clock=clock, trace=trace, label="dial")
            assert len(calls) == 3
            assert err.value.attempts == 3
            assert trace.count("retry") == 2
            # The backoff actually elapsed on the virtual clock.
            assert clock.now() == pytest.approx(3.0)

        virtual(scenario)


class TestDeadline:
    def test_expires_on_the_virtual_clock(self):
        async def scenario(clock):
            deadline = Deadline.after(clock, 5.0, operation="probe")
            assert not deadline.expired
            assert deadline.remaining() == pytest.approx(5.0)
            with pytest.raises(DeadlineExceeded) as err:
                await deadline.wait_for(clock.sleep(10.0))
            assert isinstance(err.value, TimeoutError)  # catchable either way
            assert deadline.expired

        virtual(scenario)

    def test_unbounded_deadline_never_expires(self):
        async def scenario(clock):
            deadline = Deadline.after(clock, None)
            assert deadline.remaining() is None
            assert await deadline.wait_for(asyncio.sleep(0, result=7)) == 7

        virtual(scenario)


class TestCircuitBreaker:
    def test_state_machine_trips_half_opens_and_closes(self):
        async def scenario(clock):
            trace = ResilienceTrace()
            breaker = CircuitBreaker(failure_threshold=2, reset_timeout=10.0,
                                     clock=clock, trace=trace)
            assert breaker.allow()
            breaker.record_failure()
            assert breaker.state == "closed" and breaker.allow()
            breaker.record_failure()
            assert breaker.state == "open" and breaker.trips == 1
            with pytest.raises(CircuitOpen):
                breaker.check("dial")
            await clock.advance(10.0)
            assert breaker.allow()          # half-open probe
            assert breaker.state == "half_open"
            breaker.record_failure()        # probe failed: re-open
            assert breaker.state == "open" and breaker.trips == 2
            await clock.advance(10.0)
            assert breaker.allow()
            breaker.record_success()
            assert breaker.state == "closed" and breaker.failures == 0
            assert trace.kinds() == ("breaker_trip", "breaker_half_open",
                                     "breaker_trip", "breaker_half_open",
                                     "breaker_close")

        virtual(scenario)


class TestResilienceTrace:
    def test_json_form_is_deterministic_and_wall_clock_free(self):
        def build():
            trace = ResilienceTrace()
            trace.record("retry", op="request", attempt=1, delay=0.05)
            trace.record("reconnect", reconnects=1)
            trace.record("resume", key_id="k2")
            return trace

        assert build().to_json() == build().to_json()
        assert "time" not in build().to_json()
        assert build().kinds() == ("retry", "reconnect", "resume")


# ---------------------------------------------------------------------------
# connection-level faults: cut and stall
# ---------------------------------------------------------------------------


class TestConnectionFaults:
    def test_cut_resets_the_peer_not_a_clean_eof(self):
        async def scenario():
            from repro.net.faults import FaultyWriter

            (reader, _), (_, writer) = memory_pipe()
            faulty = FaultyWriter(writer, FaultPlan.cut(4, seed=1))
            faulty.write(b"0123456789")
            # RST semantics: the reset discards even delivered-but-unread
            # bytes — the peer sees the reset, never a clean EOF.
            with pytest.raises(ConnectionResetError):
                await reader.read(100)
            assert faulty.counters.reset is True
            assert faulty.counters.undelivered_bytes == 6

        run(scenario())

    def test_stall_withholds_bytes_and_the_eof(self):
        async def scenario():
            from repro.net.faults import FaultyWriter

            (reader, _), (_, writer) = memory_pipe()
            faulty = FaultyWriter(writer, FaultPlan.stall(4, seed=1))
            faulty.write(b"0123456789")
            faulty.close()  # the FIN is withheld with everything else
            assert await reader.read(4) == b"0123"
            pending = asyncio.ensure_future(reader.read(100))
            await asyncio.sleep(0)
            assert not pending.done()  # silence, not EOF
            pending.cancel()
            await asyncio.gather(pending, return_exceptions=True)
            assert faulty.counters.stalled is True

        run(scenario())

    def test_new_fault_fields_round_trip_and_are_lossy(self):
        plan = FaultPlan(seed=3, cut_at=40, stall_at=None)
        assert plan.lossy
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert "cut@40" in plan.describe()
        assert "stall@9" in FaultPlan.stall(9).describe()
        with pytest.raises(FaultPlanError):
            FaultPlan(cut_at=-1)


class TestChaosSchedule:
    def test_schedules_are_pure_functions_of_their_fields(self):
        schedule = ChaosSchedule(scenario="cut", seed=11, failures=2)
        clone = ChaosSchedule.from_json(schedule.to_json())
        assert clone == schedule
        assert clone.fingerprint == schedule.fingerprint
        for attempt in (1, 2, 3):
            assert (schedule.plan_for_attempt(attempt)
                    == clone.plan_for_attempt(attempt))
        assert schedule.plan_for_attempt(3) is None  # healed

    def test_scenarios_map_to_the_right_fault_models(self):
        assert ChaosSchedule(scenario="cut", seed=1).plan_for_attempt(1).cut_at
        assert ChaosSchedule(scenario="stall", seed=1).plan_for_attempt(1).stall_at
        loss_cut = ChaosSchedule(scenario="loss_cut", seed=1).plan_for_attempt(1)
        assert loss_cut.cut_at and loss_cut.loss_rate > 0
        flaky = ChaosSchedule(scenario="dial_flaky", seed=1, failures=2)
        assert flaky.plan_for_attempt(1) is None
        assert flaky.dial_fails(1) and flaky.dial_fails(2)
        assert not flaky.dial_fails(3)

    def test_validation(self):
        with pytest.raises(FaultPlanError):
            ChaosSchedule(scenario="earthquake")
        with pytest.raises(FaultPlanError):
            ChaosSchedule(scenario="cut", failures=-1)
        with pytest.raises(FaultPlanError):
            ChaosSchedule.from_dict({"scenario": "cut", "volcano": 1})


# ---------------------------------------------------------------------------
# resilient clients: timeouts, retry/reconnect, rotation resume
# ---------------------------------------------------------------------------


def modbus_requests(count: int, seed: int = 5):
    generator = registry.get("modbus").message_generator
    rng = Random(seed)
    return [generator(rng) for _ in range(count)]


class TestResilientClient:
    def test_idle_read_timeout_diagnoses_a_stalled_response(self):
        async def scenario(clock):
            server = ObfuscatedServer("modbus")
            client = ObfuscatedClient(
                "modbus", clock=clock,
                timeouts=TimeoutConfig(idle_read=2.0, drain=1.0))
            connect_memory(client, server,
                           response_faults=FaultPlan.stall(2, seed=1))
            (request,) = modbus_requests(1)
            with pytest.raises(DeadlineExceeded):
                await client.request(request)
            assert client.stats.timeouts == 1
            assert client.trace.kinds()[-1:] == ("timeout",)
            await client.close()

        virtual(scenario)

    def test_request_retry_reconnects_through_a_cut(self):
        async def scenario(clock):
            server = ObfuscatedServer("modbus")
            client = ObfuscatedClient(
                "modbus", clock=clock,
                retry=RetryPolicy(attempts=3, base_delay=0.5, seed=7),
                timeouts=TimeoutConfig(idle_read=2.0, drain=1.0))
            connect_memory(client, server,
                           request_faults=FaultPlan.cut(15, seed=3))
            replies = [await client.request(message)
                       for message in modbus_requests(4)]
            assert len(replies) == 4
            assert client.stats.reconnects >= 1
            assert client.stats.retries >= 1
            assert client.trace.count("reconnect") == client.stats.reconnects
            await client.close()

        virtual(scenario)

    def test_retries_exhausted_is_typed_and_bounded(self):
        async def scenario(clock):
            server = ObfuscatedServer("modbus")
            client = ObfuscatedClient(
                "modbus", clock=clock,
                retry=RetryPolicy(attempts=2, base_delay=0.25, seed=1),
                timeouts=TimeoutConfig(idle_read=1.0, drain=0.5))
            connect_memory(client, server)

            async def dead_factory():
                raise ConnectionRefusedError("upstream is gone")

            client.set_reconnect(dead_factory)
            # Kill the live transport so the first attempt fails too.
            client._writer.close()
            with pytest.raises(RetriesExhausted):
                await client.request(modbus_requests(1)[0])
            # One request-level retry plus one connect-level retry inside the
            # failed reconnect: both layers account their attempts.
            assert client.stats.retries == 2
            assert client.stats.reconnects == 0
            await client.close()

        virtual(scenario)

    def test_reconnect_resumes_on_the_last_announced_key(self):
        keys = [derive_session_key("modbus", passes=1, seed=seed)
                for seed in (10, 20)]

        async def scenario(clock):
            server = ObfuscatedServer("modbus", plan_book=PlanBook(keys))
            client = ObfuscatedClient(
                "modbus", plan_book=PlanBook(keys), clock=clock,
                retry=RetryPolicy(attempts=3, base_delay=0.5, seed=7),
                timeouts=TimeoutConfig(idle_read=2.0, drain=1.0))
            connect_memory(client, server)
            first, second = modbus_requests(2)
            await client.request(first)
            await client.rotate(keys[1].key_id)
            client._writer.close()  # the transport dies under the session
            reply = await client.request(second)
            assert reply is not None
            await client.close()
            assert client.trace.count("resume") == 1
            resumed = server.completed[-1]
            # The fresh server session followed the re-announced key: one
            # rotation event, and the request decoded under key 2's dialect.
            assert resumed.rotations == 1
            assert resumed.received == 1
            assert resumed.error is None

        virtual(scenario)

    def test_same_seed_replays_an_identical_recovery_trace(self):
        def recover(seed: int) -> str:
            async def scenario(clock):
                server = ObfuscatedServer("modbus")
                client = ObfuscatedClient(
                    "modbus", clock=clock,
                    retry=RetryPolicy(attempts=4, base_delay=0.5, seed=seed),
                    timeouts=TimeoutConfig(idle_read=2.0, drain=1.0))
                connect_memory(client, server,
                               request_faults=FaultPlan.cut(15, seed=3))
                for message in modbus_requests(3):
                    await client.request(message)
                await client.close()
                return client.trace.to_json()

            return virtual(scenario)

        assert recover(9) == recover(9)
        assert recover(9) != recover(10)  # jitter differs → schedule differs


# ---------------------------------------------------------------------------
# teardown races (satellite): double close, cut transports, drain deadlines
# ---------------------------------------------------------------------------


class TestTeardownRaces:
    def test_double_close_is_a_no_op(self):
        async def scenario():
            server = ObfuscatedServer("modbus")
            client = connect_memory(ObfuscatedClient("modbus"), server)
            await client.request(modbus_requests(1)[0])
            await client.close()
            await client.close()  # second close: nothing to do, no error
            assert len(server.completed) == 1

        run(scenario())

    def test_close_on_an_already_cut_transport(self):
        async def scenario():
            server = ObfuscatedServer("modbus")
            client = ObfuscatedClient("modbus")
            connect_memory(client, server,
                           request_faults=FaultPlan.cut(6, seed=2))
            try:
                for message in modbus_requests(3):
                    await client.request(message)
            except (ConnectionError, OSError):
                pass
            await client.close()  # the cut already killed the transport
            await client.close()
            assert client._writer is None

        run(scenario())

    def test_close_drain_is_bounded_against_a_stalled_peer(self):
        async def scenario(clock):
            server = ObfuscatedServer("modbus")
            client = ObfuscatedClient(
                "modbus", clock=clock,
                timeouts=TimeoutConfig(drain=3.0))
            connect_memory(client, server,
                           response_faults=FaultPlan.stall(2, seed=1))
            await client.send(modbus_requests(1)[0])
            started = clock.now()
            await client.close(wait_server=False)
            assert clock.now() - started == pytest.approx(3.0)
            assert client.stats.drain_cancels >= 1
            assert client.trace.count("drain_cancel") >= 1

        virtual(scenario)

    def test_server_stop_drains_then_cancels_stragglers(self):
        async def scenario(clock):
            server = ObfuscatedServer("modbus", clock=clock)
            client = connect_memory(ObfuscatedClient("modbus", clock=clock),
                                    server)
            # A request in flight, the client never closing: the session is
            # mid-conversation when the server stops.
            await client.request(modbus_requests(1)[0])
            await server.stop(drain=True, deadline=2.0)
            assert len(server.completed) == 1
            straggler = server.completed[0]
            assert straggler.drain_cancels == 1
            assert straggler.error.startswith("DrainCancelled")
            assert server.trace.count("drain_cancel") == 1
            # The server no longer admits sessions.
            with pytest.raises(ConnectionError):
                await server.serve_session(*memory_pipe()[0])

        virtual(scenario)

    def test_server_stop_drain_completes_cleanly_when_sessions_finish(self):
        async def scenario(clock):
            server = ObfuscatedServer("modbus", clock=clock)
            client = connect_memory(ObfuscatedClient("modbus", clock=clock),
                                    server)
            await client.request(modbus_requests(1)[0])
            closer = asyncio.ensure_future(client.close())
            await server.stop(drain=True, deadline=5.0)
            await closer
            assert server.completed[0].error is None
            assert server.completed[0].drain_cancels == 0

        virtual(scenario)


# ---------------------------------------------------------------------------
# server-side resilience: idle reaping and admission bounds
# ---------------------------------------------------------------------------


class TestServerResilience:
    def test_idle_sessions_are_reaped_with_a_typed_entry(self):
        async def scenario(clock):
            server = ObfuscatedServer(
                "modbus", clock=clock,
                timeouts=TimeoutConfig(idle_read=4.0))
            client = connect_memory(ObfuscatedClient("modbus", clock=clock),
                                    server)
            await client.request(modbus_requests(1)[0])
            # The client goes silent; the reap deadline fires on the clock.
            await clock.advance(4.0)
            await asyncio.sleep(0)
            assert len(server.completed) == 1
            reaped = server.completed[0]
            assert reaped.timeouts == 1
            assert reaped.error.startswith("DeadlineExceeded: idle-read")
            assert server.trace.count("timeout") == 1

        virtual(scenario)

    def test_max_sessions_bounds_concurrent_admission(self):
        async def scenario():
            server = ObfuscatedServer("modbus", max_sessions=2)
            peak = 0

            async def one_session(index):
                nonlocal peak
                client = connect_memory(
                    ObfuscatedClient("modbus", session_id=f"c{index}"), server)
                for message in modbus_requests(2, seed=index):
                    await client.request(message)
                    peak = max(peak, len(server._active))
                await client.close()

            await asyncio.gather(*(one_session(index) for index in range(6)))
            assert len(server.completed) == 6
            assert all(stats.error is None for stats in server.completed)
            assert peak <= 2

        run(scenario())


# ---------------------------------------------------------------------------
# proxy resilience: dial retry, breaker, recorded failures
# ---------------------------------------------------------------------------


class TestProxyResilience:
    def test_failed_upstream_dial_is_recorded_not_silent(self):
        async def scenario():
            proxy = ObfuscatedProxy("modbus",
                                    timeouts=TimeoutConfig(connect=1.0))
            # An upstream nobody listens on: the dial must fail fast, land in
            # completed with the error, and fully close the client connection.
            dead_server = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0)
            port = dead_server.sockets[0].getsockname()[1]
            dead_server.close()
            await dead_server.wait_closed()
            host, proxy_port = await proxy.start_tcp("127.0.0.1", port)
            reader, writer = await asyncio.open_connection(host, proxy_port)
            assert await reader.read(100) == b""  # fully closed, not hung
            writer.close()
            await writer.wait_closed()
            await proxy.stop()
            for _ in range(200):
                if proxy.completed:
                    break
                await asyncio.sleep(0.01)
            assert len(proxy.completed) == 1
            failed = proxy.completed[0]
            assert failed.error is not None
            assert failed.dial_failures == 1
            assert failed.requests == failed.responses == 0
            assert proxy.dial_failures == 1

        run(scenario())

    def test_dial_retry_behind_the_circuit_breaker(self):
        async def scenario(clock):
            breaker = CircuitBreaker(failure_threshold=2, reset_timeout=60.0,
                                     clock=clock)
            proxy = ObfuscatedProxy(
                "modbus", clock=clock, breaker=breaker,
                retry=RetryPolicy(attempts=3, base_delay=0.5, jitter=0.0,
                                  seed=0))
            stats_entry = None
            with pytest.raises((RetriesExhausted, CircuitOpen)):
                # Port 1 on localhost: nothing listens there.
                await proxy.dial_upstream("127.0.0.1", 1)
            assert breaker.state == "open"
            assert breaker.trips == 1
            assert proxy.dial_failures >= 2
            assert proxy.trace.count("dial_failure") == proxy.dial_failures
            # While open, the next dial is refused without touching the net.
            before = proxy.dial_failures
            with pytest.raises(CircuitOpen):
                await proxy.dial_upstream("127.0.0.1", 1)
            assert proxy.dial_failures == before
            assert stats_entry is None

        virtual(scenario)
