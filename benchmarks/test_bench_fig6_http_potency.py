"""Figure 6 — HTTP normalized potency metrics vs. number of obfuscations.

Regenerates the paper's Figure 6: the evolution of the normalized potency
metrics (lines, structs, call-graph size/depth) and of the buffer size as the
number of applied transformations grows.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.codegen import generate_module
from repro.experiments import ExperimentRunner
from repro.metrics import measure_source
from repro.protocols import http


def test_fig6_http_potency(benchmark, bench_config):
    # Benchmarked unit: measuring the potency metrics of one generated library.
    source = generate_module(http.request_graph())
    benchmark(lambda: measure_source(source))

    runner = ExperimentRunner(
        "http",
        seed=7,
        runs_per_level=bench_config["runs_per_level"],
        messages_per_run=2,
    )
    series = runner.potency_series(levels=bench_config["levels"])
    headers = ["Transf/node", "Applied", "Lines", "Structs", "CG size", "CG depth",
               "Buffer (bytes)"]
    rows = [
        [passes,
         f"{series[passes]['applied']:.1f}",
         f"{series[passes]['lines']:.2f}",
         f"{series[passes]['structs']:.2f}",
         f"{series[passes]['call_graph_size']:.2f}",
         f"{series[passes]['call_graph_depth']:.2f}",
         f"{series[passes]['buffer_size']:.0f}"]
        for passes in sorted(series)
    ]
    print()
    print(render_table(headers, rows, title="Figure 6 — HTTP normalized potency metrics"))
    levels = sorted(series)
    # Lines / structs / call-graph size grow with the number of obfuscations;
    # call-graph depth and buffer size grow slowest (paper's observation).
    assert series[levels[-1]]["lines"] > series[levels[0]]["lines"]
    assert series[levels[-1]]["structs"] > series[levels[0]]["structs"]
    assert series[levels[-1]]["call_graph_size"] > series[levels[0]]["call_graph_size"]
    assert series[levels[-1]]["call_graph_depth"] <= series[levels[-1]]["call_graph_size"]
