"""Table III — comparative results for the HTTP protocol.

Regenerates the paper's Table III: for 1–4 obfuscations per node, the number
of applied transformations, the normalized potency metrics (lines, structs,
call-graph size/depth) and the absolute costs (generation, parsing and
serialization time, buffer size), each reported as ``avg[min; max]``.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.experiments import ExperimentRunner, TABLE_HEADERS


def test_table3_http(benchmark, bench_config):
    runner = ExperimentRunner(
        "http",
        seed=3,
        runs_per_level=bench_config["runs_per_level"],
        messages_per_run=bench_config["messages_per_run"],
    )
    # The benchmarked unit is one full experiment run at one obfuscation per node.
    benchmark(lambda: runner.run_once(passes=1, run_index=0))

    table = runner.run_table(levels=bench_config["levels"])
    rows = [table[passes].table_row() for passes in sorted(table)]
    print()
    print(render_table(TABLE_HEADERS, rows,
                       title="Table III — HTTP (normalized potency, absolute costs)"))
    for passes in bench_config["levels"][1:]:
        assert table[passes].applied.mean > table[1].applied.mean
    assert table[4].lines.mean >= table[1].lines.mean
    assert table[4].structs.mean >= table[1].structs.mean
