"""Table IV — comparative results for the TCP-Modbus protocol.

Regenerates the paper's Table IV (same layout as Table III, Modbus request
specification and core application).
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.experiments import ExperimentRunner, TABLE_HEADERS


def test_table4_modbus(benchmark, bench_config):
    runner = ExperimentRunner(
        "modbus",
        seed=4,
        runs_per_level=bench_config["runs_per_level"],
        messages_per_run=bench_config["messages_per_run"],
    )
    benchmark(lambda: runner.run_once(passes=1, run_index=0))

    table = runner.run_table(levels=bench_config["levels"])
    rows = [table[passes].table_row() for passes in sorted(table)]
    print()
    print(render_table(TABLE_HEADERS, rows,
                       title="Table IV — TCP-Modbus (normalized potency, absolute costs)"))
    for passes in bench_config["levels"][1:]:
        assert table[passes].applied.mean > table[1].applied.mean
    assert table[4].lines.mean >= table[1].lines.mean
    assert table[4].structs.mean >= table[1].structs.mean
