"""Figure 4 — HTTP parsing and serialization time vs. applied transformations.

Regenerates the paper's Figure 4: per-run parsing/serialization times against
the number of applied transformations, with the least-squares regression lines
and their correlation coefficients.
"""

from __future__ import annotations

from random import Random

from repro.codegen import GeneratedCodec
from repro.experiments import ExperimentRunner
from repro.protocols import http
from repro.transforms import Obfuscator


def test_fig4_http_times(benchmark, bench_config):
    # Benchmarked unit: parsing one obfuscated HTTP message with a generated library.
    graph = Obfuscator(seed=0).obfuscate(http.request_graph(), 2).graph
    codec = GeneratedCodec(graph, seed=0)
    data = codec.serialize(http.random_request(Random(0)))
    benchmark(lambda: codec.parse(data))

    runner = ExperimentRunner(
        "http",
        seed=5,
        runs_per_level=bench_config["runs_per_level"],
        messages_per_run=bench_config["messages_per_run"],
    )
    runs, parse_fit, serialize_fit = runner.time_series(levels=bench_config["levels"])
    print()
    print("Figure 4 — HTTP parsing/serialization time vs. applied transformations")
    for run in runs:
        print(f"  applied={run.applied:4d}  parse={run.parse_ms:.4f} ms  "
              f"serialize={run.serialize_ms:.4f} ms")
    print(f"  parsing regression:       {parse_fit.format()}")
    print(f"  serialization regression: {serialize_fit.format()}")
    # The paper reports a linear increase with a gentle slope; a small negative
    # tolerance absorbs per-message timing noise on the reduced workload.
    assert parse_fit.slope >= -0.005
    assert serialize_fit.slope >= -0.005
    assert max(run.parse_ms for run in runs) < 50.0
    assert max(run.serialize_ms for run in runs) < 50.0
