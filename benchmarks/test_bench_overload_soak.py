"""Overload-soak suite — resource governance under hostile volume.

The PR 8 acceptance study: every registry protocol faces four volume attacks
under two :class:`~repro.net.governance.ResourceBudget` profiles (strict and
standard), all on the virtual clock:

* **memory_bomb** — a peer declares a record twice the profile's stream
  budget and drips filler toward the promise.  The budgeted server must kill
  the session with a typed :class:`~repro.core.errors.BudgetExceeded` while
  its peak buffered bytes stay under the budget; an *unbudgeted control*
  server run against the same attack must demonstrably buffer past that
  limit — the governance layer is the difference, measured.
* **slow_consumer** — a client fires every request before reading a single
  reply over a flow-limited transport.  The server must finish the session
  with its in-flight bytes bounded by window + one frame, with drain waits
  proving the backpressure actually engaged.
* **flood_admission** — more concurrent clients than the
  :class:`~repro.net.governance.LoadGovernor`'s session watermark admits.
  Excess admissions are shed with typed busy/retry-after records; the shed
  clients back off on their seeded retry schedules and must all complete
  once the load drains.  Every shed is accounted on both sides.
* **drip_feed** — the transport delivers one byte per segment.  Pure
  pressure on the incremental decoders: the budgets must not false-positive
  and every reply must arrive.

A cell is **undiagnosed** unless its scenario-specific evidence is complete:
typed errors only, replies complete where recovery is expected, budget and
governor counters agreeing with the traces.  Each cell runs twice and the
full record must replay byte-identically (budgets and governor hold no clock
and no randomness, so overload behaviour is a pure function of the seeds).
Results go to ``BENCH_PR8.json`` at the repository root; ``BENCH_QUICK=1``
selects the reduced CI smoke configuration.
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import sys
from pathlib import Path
from random import Random

from repro.net import (
    FaultPlan,
    LoadGovernor,
    MemoryWriter,
    ObfuscatedClient,
    ObfuscatedServer,
    ResourceBudget,
    RetryPolicy,
    TimeoutConfig,
    VirtualClock,
    connect_memory,
    memory_pipe,
)
from repro.net.framing import RECORD_HEADER
from repro.net.session import MeteredReader
from repro.protocols import registry

QUICK = os.environ.get("BENCH_QUICK", "").lower() not in ("", "0", "false")

#: requests per admitted client in the flood_admission scenario.
ADMISSION_MESSAGES = 3 if QUICK else 5
#: requests fired before the first read in the slow_consumer scenario.
SLOW_MESSAGES = 6 if QUICK else 10
#: requests pushed through one-byte segments in the drip_feed scenario.
DRIP_MESSAGES = 2 if QUICK else 4
#: transport flow-control window of the slow_consumer scenario.
SLOW_WINDOW = 32
#: filler granularity of the memory bomb drip — well under the strictest
#: stream budget, so the per-feed accounting registers the control server's
#: buffer growth far past the limit (not just one chunk over).
BOMB_CHUNK = 16 << 10

SCENARIOS = ("memory_bomb", "slow_consumer", "flood_admission", "drip_feed")
PROFILES = {"strict": ResourceBudget.strict(),
            "standard": ResourceBudget.standard()}

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR8.json"

#: error prefixes that count as a *typed* diagnosis on a killed session.
TYPED_ERRORS = ("BudgetExceeded", "ServerBusy", "StreamError",
                "ConnectionResetError", "ConnectionError", "DeadlineExceeded",
                "DrainCancelled", "IncompleteReadError", "OSError")


def _request_messages(setup: registry.ProtocolSetup, rng: Random,
                      count: int) -> list:
    """``count`` generated messages the protocol's responder replies to."""
    messages = []
    while len(messages) < count:
        message = setup.message_generator(rng)
        if setup.responder(message, Random(0)) is not None:
            messages.append(message)
    return messages


# ---------------------------------------------------------------------------
# scenario drivers
# ---------------------------------------------------------------------------


async def _bomb_one_server(setup: registry.ProtocolSetup,
                           budget: ResourceBudget | None,
                           declared: int) -> dict:
    """Declare a ``declared``-byte record, drip filler toward the promise."""
    server = ObfuscatedServer(setup, framing="record", budget=budget, seed=1,
                              record_spans=False)
    (_, writer), (s_reader, s_writer) = memory_pipe()
    task = asyncio.ensure_future(server.serve_session(s_reader, s_writer))
    writer.write(declared.to_bytes(RECORD_HEADER, "big"))
    await writer.drain()
    fed = 0
    while fed < declared and not task.done():
        chunk = min(BOMB_CHUNK, declared - fed)
        writer.write(b"\x00" * chunk)
        fed += chunk
        await writer.drain()
    if not task.done():
        writer.write_eof()
    await asyncio.gather(task, return_exceptions=True)
    stats = server.completed[0]
    return {
        "declared": declared,
        "filler_fed": fed,
        "peak_buffered": stats.peak_buffered,
        "budget_violations": stats.budget_violations,
        "error": stats.error,
    }


async def _memory_bomb(setup: registry.ProtocolSetup, budget: ResourceBudget,
                       clock: VirtualClock, seed: int) -> dict:
    # The bomb is sized relative to the profile so both profiles are truly
    # attacked: twice the stream budget, always a real memory threat.
    declared = 2 * budget.max_stream_bytes
    budgeted = await _bomb_one_server(setup, budget, declared)
    control = await _bomb_one_server(setup, None, declared)
    return {"budgeted": budgeted, "control": control,
            "budget_limit": budget.max_stream_bytes}


async def _slow_consumer(setup: registry.ProtocolSetup,
                         budget: ResourceBudget, clock: VirtualClock,
                         seed: int) -> dict:
    # Asymmetric flow control: the client's writes are unbounded (so firing
    # every request first cannot deadlock) while the server's response
    # direction runs through a SLOW_WINDOW-byte window the unread client
    # edge saturates.
    server = ObfuscatedServer(setup, budget=budget, seed=1,
                              record_spans=False)
    client_side = MeteredReader()
    server_side = MeteredReader()
    client_writer = MemoryWriter(server_side)
    server_writer = MemoryWriter(client_side, limit=SLOW_WINDOW)
    client = ObfuscatedClient(setup, budget=budget,
                              session_id=f"slow-{seed}")
    client.attach(client_side, client_writer)
    task = asyncio.ensure_future(
        server.serve_session(server_side, server_writer))

    messages = _request_messages(setup, Random(seed), SLOW_MESSAGES)
    for message in messages:
        await client.send(message)
    replies = []
    for _ in messages:
        decoded = await client.receive()
        if decoded is None:
            break
        replies.append(len(decoded.raw))
    await client.close()
    await asyncio.gather(task, return_exceptions=True)
    stats = server.completed[0]
    return {
        "requests": len(messages),
        "replies": len(replies),
        "max_frame": (max(replies) + RECORD_HEADER) if replies else 0,
        "drain_waits": server_writer.drain_waits,
        "peak_in_flight": server_writer.peak_in_flight,
        "window": SLOW_WINDOW,
        "server_error": stats.error,
        "client_violations": client.stats.budget_violations,
        "peak_buffered": stats.peak_buffered,
    }


async def _flood_admission(setup: registry.ProtocolSetup,
                           budget: ResourceBudget, clock: VirtualClock,
                           seed: int) -> dict:
    governor = LoadGovernor(low_bytes=1 << 20, high_bytes=1 << 22,
                            low_sessions=2, high_sessions=2,
                            retry_after=0.25)
    server = ObfuscatedServer(setup, framing="record", budget=budget,
                              governor=governor, seed=1, record_spans=False)

    async def drive(index: int) -> dict:
        await clock.sleep(index * 0.1)
        client = ObfuscatedClient(
            setup, framing="record", budget=budget,
            session_id=f"adm-{index}", clock=clock,
            retry=RetryPolicy(attempts=6, base_delay=0.5,
                              seed=seed * 10 + index),
            timeouts=TimeoutConfig(idle_read=30.0, drain=1.0))
        connect_memory(client, server)
        replies = 0
        for message in _request_messages(setup, Random(seed * 100 + index),
                                         ADMISSION_MESSAGES):
            await client.request(message)
            replies += 1
            # Hold the session open so admissions genuinely overlap.
            await clock.sleep(0.3)
        await client.close()
        stats = client.stats
        return {
            "replies": replies,
            "sheds": stats.sheds,
            "retries": stats.retries,
            "reconnects": stats.reconnects,
            "busy_events": client.trace.count("busy"),
            "error": stats.error,
        }

    clients = await asyncio.gather(*(drive(index) for index in range(3)))
    shed_entries = [stats.error for stats in server.completed if stats.sheds]
    served = [stats.error for stats in server.completed if not stats.sheds]
    return {
        "clients": list(clients),
        "governor": governor.counters(),
        "shed_entries": shed_entries,
        "served_errors": served,
        "trace_sheds": server.trace.count("shed"),
    }


async def _drip_feed(setup: registry.ProtocolSetup, budget: ResourceBudget,
                     clock: VirtualClock, seed: int) -> dict:
    server = ObfuscatedServer(setup, budget=budget, seed=1,
                              record_spans=False)
    client = ObfuscatedClient(setup, budget=budget,
                              session_id=f"drip-{seed}")
    connect_memory(client, server,
                   request_faults=FaultPlan.drip(seed=seed))
    replies = 0
    for message in _request_messages(setup, Random(seed), DRIP_MESSAGES):
        await client.request(message)
        replies += 1
    counters = client._writer.counters
    segments, delivered = counters.segments, counters.delivered_bytes
    await client.close()
    stats = server.completed[0]
    return {
        "replies": replies,
        "expected": DRIP_MESSAGES,
        "segments": segments,
        "delivered_bytes": delivered,
        "server_error": stats.error,
        "server_violations": stats.budget_violations,
    }


DRIVERS = {
    "memory_bomb": _memory_bomb,
    "slow_consumer": _slow_consumer,
    "flood_admission": _flood_admission,
    "drip_feed": _drip_feed,
}


def _run_cell(setup: registry.ProtocolSetup, scenario: str,
              budget: ResourceBudget, seed: int) -> dict:
    clock = VirtualClock()

    async def main():
        coroutine = DRIVERS[scenario](setup, budget, clock, seed)
        if scenario == "flood_admission":
            # The only scenario that sleeps on the clock (staggered
            # admissions, seeded retry backoff); the pure-backpressure
            # scenarios are event-loop work with nothing to advance.
            return await clock.run(coroutine)
        return await coroutine

    return asyncio.run(main())


# ---------------------------------------------------------------------------
# the verdicts
# ---------------------------------------------------------------------------


def _typed(error: "str | None") -> bool:
    return error is None or error.startswith(TYPED_ERRORS)


def _classify(run: dict, scenario: str,
              budget: ResourceBudget) -> tuple[str, list[str]]:
    problems: list[str] = []
    if scenario == "memory_bomb":
        budgeted, control = run["budgeted"], run["control"]
        if (budgeted["error"] is None
                or not budgeted["error"].startswith("BudgetExceeded")):
            problems.append(f"bomb not typed: {budgeted['error']!r}")
        if budgeted["budget_violations"] != 1:
            problems.append("bomb violation not counted")
        # The governed claim: peak stays within budget + one pump chunk.
        ceiling = budget.max_stream_bytes + BOMB_CHUNK
        if budgeted["peak_buffered"] > ceiling:
            problems.append(
                f"budgeted peak {budgeted['peak_buffered']} > {ceiling}")
        # The control claim: without the budget the same attack buffers past
        # the limit — the layer is the measured difference, not a tautology.
        if control["peak_buffered"] <= budget.max_stream_bytes:
            problems.append(
                f"control peak {control['peak_buffered']} never exceeded "
                f"the budget limit {budget.max_stream_bytes}")
        if not _typed(control["error"]):
            problems.append(f"control untyped: {control['error']!r}")
        return ("shielded" if not problems else "undiagnosed"), problems
    if scenario == "slow_consumer":
        if run["replies"] != run["requests"]:
            problems.append(f"{run['replies']}/{run['requests']} replies")
        if run["drain_waits"] < 1:
            problems.append("backpressure never engaged")
        if run["peak_in_flight"] > run["window"] + run["max_frame"]:
            problems.append(
                f"in-flight {run['peak_in_flight']} > window+frame")
        if run["server_error"] is not None or run["client_violations"]:
            problems.append("session did not finish clean")
    elif scenario == "flood_admission":
        for index, client in enumerate(run["clients"]):
            if client["replies"] != ADMISSION_MESSAGES:
                problems.append(
                    f"client {index}: {client['replies']}/"
                    f"{ADMISSION_MESSAGES} replies")
            if client["busy_events"] != client["sheds"]:
                problems.append(f"client {index}: busy trace disagrees")
        governor = run["governor"]
        if governor["sheds"] < 1:
            problems.append("admission flood produced no shed")
        if len(run["shed_entries"]) != governor["sheds"]:
            problems.append("shed entries disagree with governor count")
        if governor["sheds"] != run["trace_sheds"]:
            problems.append("governor sheds disagree with trace")
        if sum(c["sheds"] for c in run["clients"]) < 1:
            problems.append("no client observed a busy refusal")
        for error in run["shed_entries"]:
            if error is None or not error.startswith("ServerBusy"):
                problems.append(f"untyped shed entry {error!r}")
        for error in run["served_errors"]:
            if not _typed(error):
                problems.append(f"untyped session error {error!r}")
    elif scenario == "drip_feed":
        if run["replies"] != run["expected"]:
            problems.append(f"{run['replies']}/{run['expected']} replies")
        if run["segments"] != run["delivered_bytes"]:
            problems.append("drip was not one byte per segment")
        if run["server_error"] is not None or run["server_violations"]:
            problems.append(
                f"budget false positive: {run['server_error']!r}")
    return ("recovered" if not problems else "undiagnosed"), problems


def _run_matrix() -> list[dict]:
    cells: list[dict] = []
    for key in registry.available():
        setup = registry.get(key)
        for scenario in SCENARIOS:
            for profile_name, budget in PROFILES.items():
                seed = 11 + len(cells)
                run = _run_cell(setup, scenario, budget, seed)
                rerun = _run_cell(setup, scenario, budget, seed)
                deterministic = (json.dumps(run, sort_keys=True)
                                 == json.dumps(rerun, sort_keys=True))
                outcome, problems = _classify(run, scenario, budget)
                cells.append({
                    "protocol": key,
                    "scenario": scenario,
                    "profile": profile_name,
                    "budget": budget.fingerprint,
                    "seed": seed,
                    "run": run,
                    "outcome": outcome,
                    "problems": problems,
                    "deterministic": deterministic,
                })
    return cells


# ---------------------------------------------------------------------------
# the gate
# ---------------------------------------------------------------------------


def test_overload_soak_suite():
    cells = _run_matrix()

    report = {
        "meta": {
            "benchmark": "overload soak (resource budgets, load shedding and "
                         "backpressure under hostile volume)",
            "quick": QUICK,
            "scenarios": list(SCENARIOS),
            "profiles": {name: budget.to_dict()
                         for name, budget in PROFILES.items()},
            "admission_messages": ADMISSION_MESSAGES,
            "slow_messages": SLOW_MESSAGES,
            "drip_messages": DRIP_MESSAGES,
            "slow_window": SLOW_WINDOW,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "notes": (
                "every memory bomb must be killed by a typed BudgetExceeded "
                "with peak buffered bytes under the budget while the "
                "unbudgeted control provably buffers past it; slow consumers "
                "must be absorbed by transport backpressure (in-flight "
                "bounded by window + one frame); admission floods must shed "
                "with typed busy records that seeded retries recover from; "
                "one-byte drip feeds must produce zero budget false "
                "positives; every cell ran twice and replayed byte-"
                "identically"
            ),
        },
        "cells": cells,
        "outcomes": {
            outcome: sum(1 for cell in cells if cell["outcome"] == outcome)
            for outcome in ("shielded", "recovered", "undiagnosed")
        },
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print()
    print(f"{'protocol':<8} {'scenario':<16} {'profile':<9} "
          f"{'outcome':<12} {'det':>3}")
    for cell in cells:
        print(f"{cell['protocol']:<8} {cell['scenario']:<16} "
              f"{cell['profile']:<9} {cell['outcome']:<12} "
              f"{'yes' if cell['deterministic'] else 'NO'}")
    print(f"report written to {OUTPUT}")

    protocols = {cell["protocol"] for cell in cells}
    assert len(protocols) == 5, protocols
    assert {cell["scenario"] for cell in cells} == set(SCENARIOS)
    assert report["outcomes"]["undiagnosed"] == 0, [
        (cell["protocol"], cell["scenario"], cell["profile"],
         cell["problems"])
        for cell in cells if cell["outcome"] == "undiagnosed"
    ]
    # Every memory bomb shielded, everything else recovered, zero flakiness.
    assert report["outcomes"]["shielded"] == len(protocols) * len(PROFILES)
    for cell in cells:
        assert cell["deterministic"], (cell["protocol"], cell["scenario"],
                                       cell["profile"])
