"""Resilience-at-scale suite — inference throughput of the fast PRE engine.

Measures end-to-end format inference (similarity matrix + clustering + field
delimitation) over large captured traces for every registered protocol, in
two execution modes:

* **old** — the vendored snapshot of the pre-PR3 quadratic engine
  (``legacy_pre.py``): full-matrix Needleman–Wunsch with traceback for every
  message pair, all-pairs rescan agglomeration, per-pair realignment in the
  field delimitation.  This is the baseline of the ISSUE's ">= 3x geomean on
  >= 64-message traces" acceptance criterion;
* **new** — the current engine: banded/vectorized score-only alignment with
  exact traceback statistics, message dedup + pair memoization, and
  heap-driven agglomeration (each pair's linkage computed once, in the naive
  summation order).  Results are asserted bit-identical to the old engine on
  every benchmarked trace.

On top of the throughput cells, the suite runs the generalized resilience
experiment (:func:`repro.experiments.run_resilience`) end-to-end for every
protocol and records its wall-clock, plain-trace inference quality and
1-pass degradation.

Results are written to ``BENCH_PR3.json`` at the repository root.  Set
``BENCH_QUICK=1`` to run the reduced CI smoke configuration.  The full 3x
gate assumes numpy (the vectorized batch engine); without it the exact
pure-python fallback runs and only the no-regression floor applies.
"""

from __future__ import annotations

import json
import math
import os
import platform
import sys
import time
from pathlib import Path
from random import Random

sys.path.insert(0, str(Path(__file__).resolve().parent))
from legacy_pre import legacy_infer_formats  # noqa: E402

from repro.experiments import run_resilience
from repro.pre import clear_similarity_cache, infer_formats
from repro.pre.alignment import _np as _numpy
from repro.protocols import registry
from repro.transforms.engine import Obfuscator
from repro.wire import WireCodec

QUICK = os.environ.get("BENCH_QUICK", "").lower() not in ("", "0", "false")
#: captured messages per trace; the acceptance gate requires >= 64.
TRACE_SIZE = 24 if QUICK else 64
#: obfuscation levels (transformations per node) measured per protocol.
LEVELS = (0,) if QUICK else (0, 1)
#: timing rounds per mode; the best round is kept (standard minimum-timing).
ROUNDS = 2
#: resilience end-to-end trace size (kept small: it runs 1 + len(levels)
#: inferences per protocol).
RESILIENCE_TRACE = 16 if QUICK else 32

#: The strict 3x acceptance gate applies to full local runs with numpy; the
#: quick smoke configuration, shared CI runners and numpy-less environments
#: (where the exact pure-python fallback engine runs) use a no-regression
#: floor — the real numbers are always recorded in BENCH_PR3.json either way.
RELAXED = (QUICK or _numpy is None
           or os.environ.get("CI", "").lower() not in ("", "0", "false"))
SPEEDUP_FLOOR = 0.85 if RELAXED else 3.0
CELL_FLOOR = 0.7 if RELAXED else 1.5

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR3.json"


def _build_trace(key: str, level: int, *, seed: int = 0) -> list[bytes]:
    """A TRACE_SIZE-message capture of one protocol at one obfuscation level."""
    setup = registry.get(key)
    rng = Random(seed)
    directions = list(setup.directions())
    codecs = {}
    for direction, factory, _ in directions:
        graph = factory()
        if level:
            graph = Obfuscator(seed=seed).obfuscate(graph, level).graph
        codecs[direction] = WireCodec(graph, seed=seed)
    trace = []
    for index in range(TRACE_SIZE):
        direction, _, generator = directions[index % len(directions)]
        trace.append(codecs[direction].serialize(generator(rng)))
    return trace


def _measure_cell(trace: list[bytes]) -> tuple[float, float]:
    """(old, new) seconds for one full inference over ``trace`` (best round)."""

    def old_pass():
        return legacy_infer_formats(trace)

    def new_pass():
        # Cold memo per round: the suite measures the engine, not the cache.
        clear_similarity_cache()
        return infer_formats(trace)

    old_result = old_pass()  # warm-up + equivalence reference
    new_result = new_pass()
    assert old_result.clustering.clusters == new_result.clustering.clusters, \
        "new engine produced different clusters than the vendored old engine"
    for index in range(len(trace)):
        assert (old_result.boundaries_for(index)
                == new_result.boundaries_for(index)), \
            f"new engine produced different boundaries for message {index}"

    best = [float("inf"), float("inf")]
    for _ in range(ROUNDS):
        for position, one_pass in enumerate((old_pass, new_pass)):
            start = time.perf_counter()
            one_pass()
            best[position] = min(best[position], time.perf_counter() - start)
    return best[0], best[1]


def test_resilience_scale_suite():
    cells = []
    for key in registry.available():
        for level in LEVELS:
            trace = _build_trace(key, level)
            old_s, new_s = _measure_cell(trace)
            cells.append(
                {
                    "protocol": key,
                    "level": level,
                    "messages": len(trace),
                    "avg_message_bytes": round(sum(map(len, trace)) / len(trace), 1),
                    "old_s": round(old_s, 4),
                    "new_s": round(new_s, 4),
                    "old_msgs_per_sec": round(len(trace) / old_s, 1),
                    "new_msgs_per_sec": round(len(trace) / new_s, 1),
                    "speedup": round(old_s / new_s, 3),
                }
            )

    protocols = {}
    for key in registry.available():
        speedups = [cell["speedup"] for cell in cells if cell["protocol"] == key]
        protocols[key] = {
            "speedup_geomean": round(
                math.exp(sum(math.log(s) for s in speedups) / len(speedups)), 3
            ),
            "new_msgs_per_sec_by_level": {
                str(cell["level"]): cell["new_msgs_per_sec"]
                for cell in cells if cell["protocol"] == key
            },
        }
    overall = round(
        math.exp(sum(math.log(p["speedup_geomean"]) for p in protocols.values())
                 / len(protocols)), 3
    )

    resilience = {}
    for key in registry.available():
        start = time.perf_counter()
        report = run_resilience(protocol=key, passes_levels=(1,), seed=0,
                                trace_size=RESILIENCE_TRACE)
        wall = time.perf_counter() - start
        resilience[key] = {
            "wall_clock_s": round(wall, 3),
            "trace_messages": RESILIENCE_TRACE,
            "plain_boundary_f1": round(report.plain.boundary_f1, 4),
            "plain_purity": round(report.plain.classification_purity, 4),
            "degradation_1_pass": round(report.degradation(1), 4),
        }

    report = {
        "meta": {
            "benchmark": "PRE inference throughput (full trace inference)",
            "quick": QUICK,
            "trace_size": TRACE_SIZE,
            "levels": list(LEVELS),
            "rounds": ROUNDS,
            "numpy": None if _numpy is None else _numpy.__version__,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "baseline": (
                "old = vendored snapshot of the pre-PR3 quadratic PRE engine "
                "(benchmarks/legacy_pre.py): full-matrix Needleman-Wunsch "
                "with traceback per pair, all-pairs rescan agglomeration; "
                "new = banded/vectorized score-only alignment + dedup/memo "
                "similarity matrix + heap-driven agglomeration, "
                "asserted bit-identical on every benchmarked trace"
            ),
        },
        "cells": cells,
        "protocols": protocols,
        "overall_speedup_geomean": overall,
        "resilience_end_to_end": resilience,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print()
    print(f"{'protocol':<8} {'level':>5} {'bytes':>6} {'old msg/s':>10} "
          f"{'new msg/s':>10} {'speedup':>8}")
    for cell in cells:
        print(
            f"{cell['protocol']:<8} {cell['level']:>5} "
            f"{cell['avg_message_bytes']:>6.0f} "
            f"{cell['old_msgs_per_sec']:>10.0f} "
            f"{cell['new_msgs_per_sec']:>10.0f} "
            f"{cell['speedup']:>7.2f}x"
        )
    print(f"overall speedup geomean: {overall:.2f}x")
    for key, entry in resilience.items():
        print(f"resilience {key:<7} wall={entry['wall_clock_s']:>6.2f}s "
              f"plain F1={entry['plain_boundary_f1']:.3f} "
              f"degradation(1)={entry['degradation_1_pass']:+.0%}")
    print(f"report written to {OUTPUT}")

    # Acceptance: >= 3x geometric-mean inference speedup over the vendored
    # pre-PR3 engine for every protocol (relaxed floor under BENCH_QUICK /
    # CI / numpy-less runs, see RELAXED above), and no per-cell regression.
    for key, entry in protocols.items():
        assert entry["speedup_geomean"] >= SPEEDUP_FLOOR, (
            f"{key}: inference speedup {entry['speedup_geomean']} below the "
            f"{SPEEDUP_FLOOR}x floor"
        )
    for cell in cells:
        assert cell["speedup"] > CELL_FLOOR, cell
    # The generalized resilience experiment must complete for every protocol.
    assert set(resilience) == set(registry.available())
