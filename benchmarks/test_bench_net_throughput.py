"""Net throughput suite — async obfuscated sessions at scale.

Measures end-to-end message throughput of the live transport layer: an
:class:`~repro.net.ObfuscatedServer` drives the protocol's core-application
responder over the in-process duplex transport (the same session coroutines
as TCP, minus the kernel) while 1, 32 and 256 concurrent client sessions pump
request/response traffic.  Every registry protocol is measured; messages/sec
counts both directions, bytes/sec counts wire payload bytes.

The in-process transport is used deliberately: it scales to hundreds of
sessions without file-descriptor limits and measures the framework (framing,
incremental decoding, serialization, capture-free session loop) rather than
the kernel's TCP stack.

Results are written to ``BENCH_PR4.json`` at the repository root.  Set
``BENCH_QUICK=1`` for the reduced CI smoke configuration.  Acceptance: the
256-session cell completes for every protocol with zero session errors.
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import sys
import time
from pathlib import Path
from random import Random

from repro.net import ObfuscatedClient, ObfuscatedServer, connect_memory
from repro.protocols import mqtt, registry

QUICK = os.environ.get("BENCH_QUICK", "").lower() not in ("", "0", "false")

#: concurrent sessions per cell; the acceptance gate requires the 256 cell.
SESSION_COUNTS = (1, 32, 256)
#: requests sent per session, keyed by session count.
REQUESTS_PER_SESSION = (
    {1: 8, 32: 2, 256: 2} if QUICK else {1: 64, 32: 16, 256: 4}
)

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR4.json"

#: MQTT packet families that elicit a broker reply (CONNECT is absorbed, so
#: the benchmark's request() accounting stays uniform across protocols).
_MQTT_REPLYING = (mqtt.PUBLISH_QOS0, mqtt.PUBLISH_QOS1, mqtt.PINGREQ)


def _request_message(key: str, rng: Random):
    if key == "mqtt":
        return mqtt.random_packet(rng, packet_type=rng.choice(_MQTT_REPLYING))
    return registry.get(key).message_generator(rng)


async def _run_cell(key: str, sessions: int, requests: int) -> dict:
    server = ObfuscatedServer(key)

    async def one_session(index: int) -> tuple[int, int]:
        client = connect_memory(
            ObfuscatedClient(key, session_id=f"bench-{index}"), server)
        rng = Random(index * 9973 + sessions)
        messages = bytes_moved = 0
        for _ in range(requests):
            payload = await client.send(_request_message(key, rng))
            reply = await client.receive()
            assert reply is not None, f"{key}: server closed mid-session"
            messages += 2
            bytes_moved += len(payload) + len(reply.raw)
        await client.close()
        return messages, bytes_moved

    start = time.perf_counter()
    totals = await asyncio.gather(*(one_session(index)
                                    for index in range(sessions)))
    elapsed = time.perf_counter() - start

    errors = [stats.error for stats in server.completed if stats.error]
    assert not errors, f"{key} x {sessions} sessions: {errors[:3]}"
    assert len(server.completed) == sessions

    messages = sum(cell[0] for cell in totals)
    bytes_moved = sum(cell[1] for cell in totals)
    return {
        "protocol": key,
        "sessions": sessions,
        "requests_per_session": requests,
        "messages": messages,
        "bytes": bytes_moved,
        "framing": server.endpoint.request_framing,
        "elapsed_s": round(elapsed, 4),
        "msgs_per_sec": round(messages / elapsed, 1),
        "bytes_per_sec": round(bytes_moved / elapsed, 1),
        "session_errors": 0,
    }


def test_net_throughput_suite():
    cells = []
    for key in registry.available():
        for sessions in SESSION_COUNTS:
            cell = asyncio.run(
                _run_cell(key, sessions, REQUESTS_PER_SESSION[sessions]))
            cells.append(cell)

    protocols = {
        key: {
            "msgs_per_sec_by_sessions": {
                str(cell["sessions"]): cell["msgs_per_sec"]
                for cell in cells if cell["protocol"] == key
            },
            "framing": next(cell["framing"] for cell in cells
                            if cell["protocol"] == key),
        }
        for key in registry.available()
    }

    report = {
        "meta": {
            "benchmark": "async session throughput (in-process duplex transport)",
            "quick": QUICK,
            "session_counts": list(SESSION_COUNTS),
            "requests_per_session": {str(count): REQUESTS_PER_SESSION[count]
                                     for count in SESSION_COUNTS},
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "notes": (
                "msgs/sec counts both directions; bytes are wire payloads "
                "(record-framing envelopes excluded); every session runs the "
                "full client+server coroutine pair in one event loop"
            ),
        },
        "cells": cells,
        "protocols": protocols,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print()
    print(f"{'protocol':<8} {'sessions':>8} {'framing':>8} {'msgs':>7} "
          f"{'msg/s':>10} {'MB/s':>8}")
    for cell in cells:
        print(f"{cell['protocol']:<8} {cell['sessions']:>8} {cell['framing']:>8} "
              f"{cell['messages']:>7} {cell['msgs_per_sec']:>10.0f} "
              f"{cell['bytes_per_sec'] / 1e6:>8.2f}")
    print(f"report written to {OUTPUT}")

    # Acceptance: >= 256 concurrent sessions complete without error on every
    # registry protocol (asserted inside _run_cell; re-checked here).
    for key in registry.available():
        top = [cell for cell in cells
               if cell["protocol"] == key and cell["sessions"] == 256]
        assert top and top[0]["session_errors"] == 0, key
        assert top[0]["messages"] == 256 * REQUESTS_PER_SESSION[256] * 2
