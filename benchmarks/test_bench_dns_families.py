"""Ablation extension: contribution of each transformation family on DNS.

Extends the transformation-family ablation (``test_bench_ablation_families``)
to the DNS workload: the obfuscation engine is restricted to one family of
Table I at a time and the resulting potency (lines, structs, call-graph size)
and cost (buffer size) are compared against the full transformation set, on
the DNS query specification resolved through the protocol registry.
"""

from __future__ import annotations

from random import Random

from repro.analysis import render_table
from repro.codegen import generate_module
from repro.metrics import measure_source
from repro.protocols import registry
from repro.transforms import Obfuscator, TRANSFORMATION_FAMILIES, default_transformations, family
from repro.wire import WireCodec

SETUP = registry.get("dns")


def _measure(transformations, seed=0, passes=2):
    graph = SETUP.graph_factory()
    result = Obfuscator(transformations, seed=seed).obfuscate(graph, passes)
    reference = measure_source(generate_module(graph))
    metrics = measure_source(generate_module(result.graph)).normalized(reference)
    codec = WireCodec(result.graph, seed=seed)
    rng = Random(seed)
    sizes = [len(codec.serialize(SETUP.message_generator(rng))) for _ in range(10)]
    return result.applied_count, metrics, sum(sizes) / len(sizes)


def test_dns_transformation_families(benchmark):
    benchmark(lambda: Obfuscator(family("const"), seed=0).obfuscate(SETUP.graph_factory(), 1))

    rows = []
    applied, metrics, buffer_size = _measure(default_transformations())
    rows.append(["all families", applied, f"{metrics.lines:.2f}", f"{metrics.structs:.2f}",
                 f"{metrics.call_graph_size:.2f}", f"{buffer_size:.0f}"])
    for name in sorted(TRANSFORMATION_FAMILIES):
        applied, metrics, buffer_size = _measure(family(name))
        rows.append([name, applied, f"{metrics.lines:.2f}", f"{metrics.structs:.2f}",
                     f"{metrics.call_graph_size:.2f}", f"{buffer_size:.0f}"])
    print()
    print(render_table(
        ["Family", "Applied", "Lines (norm)", "Structs (norm)", "CG size (norm)",
         "Buffer (bytes)"],
        rows,
        title="Ablation — potency/cost per transformation family (DNS, 2 passes)",
    ))

    assert len(rows) == 1 + len(TRANSFORMATION_FAMILIES)
    by_family = {row[0]: row for row in rows}
    for row in rows:
        assert float(row[2]) >= 0.99 and float(row[3]) >= 0.99
    assert float(by_family["split"][3]) >= float(by_family["const"][3])
    assert float(by_family["all families"][3]) > 1.0
