"""Frozen snapshot of the seed revision's wire runtime (commit 672a0c1).

This module vendors the pre-plan ``Serializer`` and ``Parser`` verbatim (only
the relative imports are rewritten to absolute ones) so that the throughput
suite can measure the plan-backed runtime against the *actual* seed execution
model — per-call graph scans, generic codec-chain interpretation, per-optional
``graph.find`` lookups — reproducibly, on every machine, without checking out
the seed commit.  Do not modernize this file: its value is that it does not
change.
"""

from __future__ import annotations

from repro.core.boundary import BoundaryKind
from repro.core.errors import ParseError
from repro.core.fieldpath import FieldPath
from repro.core.graph import FormatGraph, static_size
from repro.core.message import Message
from repro.core.node import Node, NodeType
from repro.core.values import Value, decode_value, invert_chain
from repro.wire.window import Window


class _LegacyParseContext:
    """Mutable state shared by one parsing run."""

    __slots__ = ("message", "raw_values", "index_stack")

    def __init__(self) -> None:
        self.message = Message()
        #: decoded value of every terminal, keyed by node name; used to resolve
        #: LENGTH/COUNTER boundaries and Optional presence conditions.  Within a
        #: repetition element the latest value is always the one belonging to the
        #: current element because references never cross element boundaries.
        self.raw_values: dict[str, Value] = {}
        self.index_stack: list[int] = []

    def resolve(self, path: FieldPath) -> FieldPath:
        """Bind the unbound repetition indices of ``path`` to the current stack."""
        return path.resolve(self.index_stack)

    def ref_value(self, ref: str, *, node: str) -> int:
        """Integer value of a previously parsed length/counter terminal."""
        if ref not in self.raw_values:
            raise ParseError(
                f"reference {ref!r} has not been parsed yet", node=node
            )
        value = self.raw_values[ref]
        if not isinstance(value, int):
            raise ParseError(f"reference {ref!r} is not an integer", node=node)
        return value


class LegacyParser:
    """Parses (obfuscated) wire messages back into logical messages."""

    def __init__(self, graph: FormatGraph):
        self.graph = graph
        self._ref_targets = {
            node.boundary.ref
            for node in graph.nodes()
            if node.boundary.kind in (BoundaryKind.LENGTH, BoundaryKind.COUNTER)
            and node.boundary.ref is not None
        }

    # -- public API -----------------------------------------------------------

    def parse(self, data: bytes, *, strict: bool = True) -> Message:
        """Parse ``data`` into the logical message it encodes.

        With ``strict=True`` (the default) trailing unconsumed bytes raise a
        :class:`ParseError`.
        """
        window = Window(bytes(data))
        context = _LegacyParseContext()
        self._parse_node(self.graph.root, window, context)
        if strict and not window.at_end():
            raise ParseError(
                f"{window.remaining()} trailing byte(s) after the message",
                offset=window.cursor,
            )
        return context.message

    # -- node dispatch --------------------------------------------------------

    def _parse_node(self, node: Node, win: Window, ctx: _LegacyParseContext,
                    *, prebounded: bool = False) -> None:
        if node.mirrored and not prebounded:
            region = self._extract_region(node, win, ctx)
            self._parse_node(node, Window(region[::-1]), ctx, prebounded=True)
            return
        if node.type is NodeType.TERMINAL:
            value = self._parse_terminal(node, win, ctx, prebounded=prebounded)
            self._store_terminal(node, value, ctx)
            return
        inner, strict = self._composite_window(node, win, ctx, prebounded)
        if node.type is NodeType.SEQUENCE:
            self._parse_sequence(node, inner, ctx)
        elif node.type is NodeType.OPTIONAL:
            self._parse_optional(node, inner, ctx)
        elif node.type in (NodeType.REPETITION, NodeType.TABULAR):
            self._parse_repetition(node, inner, ctx, prebounded=prebounded)
        else:  # pragma: no cover - exhaustive enum
            raise ParseError(f"unknown node type {node.type!r}", node=node.name)
        if strict and not inner.at_end():
            raise ParseError(
                f"{inner.remaining()} byte(s) left inside bounded node",
                node=node.name,
                offset=inner.cursor,
            )

    def _composite_window(self, node: Node, win: Window, ctx: _LegacyParseContext,
                          prebounded: bool) -> tuple[Window, bool]:
        """Create the byte window of a composite node and tell whether it is strict."""
        if prebounded:
            return win, True
        if node.boundary.kind is BoundaryKind.LENGTH:
            length = ctx.ref_value(node.boundary.ref, node=node.name)  # type: ignore[arg-type]
            return win.subwindow(length), True
        return win, False

    # -- terminals ------------------------------------------------------------

    def _parse_terminal(self, node: Node, win: Window, ctx: _LegacyParseContext,
                        *, prebounded: bool = False) -> Value | None:
        raw = self._terminal_bytes(node, win, ctx, prebounded)
        if node.is_pad:
            return None
        assert node.value_kind is not None
        decoded = decode_value(raw, node.value_kind, endian=node.endian)
        return invert_chain(decoded, node.value_kind, node.codec_chain)

    def _terminal_bytes(self, node: Node, win: Window, ctx: _LegacyParseContext,
                        prebounded: bool) -> bytes:
        if prebounded:
            return win.read_rest()
        kind = node.boundary.kind
        try:
            if kind is BoundaryKind.FIXED:
                return win.read(node.boundary.size or 0)
            if kind is BoundaryKind.DELIMITED:
                return win.read_until(node.boundary.delimiter or b"")
            if kind is BoundaryKind.LENGTH:
                length = ctx.ref_value(node.boundary.ref, node=node.name)  # type: ignore[arg-type]
                return win.read(length)
            return win.read_rest()
        except ParseError as exc:
            raise ParseError(str(exc), node=node.name, offset=win.cursor) from exc

    def _store_terminal(self, node: Node, value: Value | None, ctx: _LegacyParseContext) -> None:
        if node.is_pad or value is None:
            return
        ctx.raw_values[node.name] = value
        if node.origin is not None:
            ctx.message.set(ctx.resolve(node.origin), value)

    # -- region extraction for mirrored nodes ----------------------------------

    def _extract_region(self, node: Node, win: Window, ctx: _LegacyParseContext) -> bytes:
        kind = node.boundary.kind
        if kind is BoundaryKind.FIXED:
            return win.read(node.boundary.size or 0)
        if kind is BoundaryKind.LENGTH:
            return win.read(ctx.ref_value(node.boundary.ref, node=node.name))  # type: ignore[arg-type]
        if kind is BoundaryKind.END:
            return win.read_rest()
        size = static_size(node)
        if size is None:
            raise ParseError(
                "mirrored node has no parse-time determinable extent", node=node.name
            )
        return win.read(size)

    # -- composites -----------------------------------------------------------

    def _parse_sequence(self, node: Node, win: Window, ctx: _LegacyParseContext) -> None:
        if node.synthesis is not None:
            self._parse_synthesis(node, win, ctx)
            return
        for child in node.children:
            self._parse_node(child, win, ctx)

    def _parse_synthesis(self, node: Node, win: Window, ctx: _LegacyParseContext) -> None:
        shares: list[Value] = []
        for child in node.children:
            if child.name in self._ref_targets:
                # Derived length prefix created by SplitCat on a variable-size
                # terminal: parsed as a regular terminal to feed later lookups.
                self._parse_node(child, win, ctx)
                continue
            shares.append(self._parse_split_child(child, win, ctx))
        if len(shares) != 2:
            raise ParseError(
                f"synthesis node {node.name!r} expected two value children, "
                f"found {len(shares)}"
            )
        combined = node.synthesis.combine(shares[0], shares[1])  # type: ignore[union-attr]
        if node.origin is None:
            raise ParseError(f"synthesis node {node.name!r} has no logical origin")
        ctx.message.set(ctx.resolve(node.origin), combined)

    def _parse_split_child(self, child: Node, win: Window, ctx: _LegacyParseContext) -> Value:
        if child.mirrored:
            region = self._extract_region(child, win, ctx)
            value = self._parse_terminal(child, Window(region[::-1]), ctx, prebounded=True)
        else:
            value = self._parse_terminal(child, win, ctx)
        if value is None:  # pragma: no cover - split children are never pads
            raise ParseError(f"split child {child.name!r} produced no value")
        ctx.raw_values[child.name] = value
        return value

    def _parse_optional(self, node: Node, win: Window, ctx: _LegacyParseContext) -> None:
        if not self._optional_present(node, win, ctx):
            return
        self._parse_node(node.children[0], win, ctx)

    def _optional_present(self, node: Node, win: Window, ctx: _LegacyParseContext) -> bool:
        if node.presence_ref is not None:
            if node.presence_ref not in ctx.raw_values:
                raise ParseError(
                    f"presence reference {node.presence_ref!r} has not been parsed yet",
                    node=node.name,
                )
            return ctx.raw_values[node.presence_ref] == node.presence_value
        return not win.at_end()

    def _parse_repetition(self, node: Node, win: Window, ctx: _LegacyParseContext,
                          *, prebounded: bool = False) -> None:
        if node.origin is None:
            raise ParseError(f"repeated node {node.name!r} has no logical origin")
        list_path = ctx.resolve(node.origin)
        if not ctx.message.has(list_path):
            ctx.message.set(list_path, [])
        child = node.children[0]
        kind = node.boundary.kind

        def parse_element(index: int) -> None:
            ctx.index_stack.append(index)
            try:
                self._parse_node(child, win, ctx)
            finally:
                ctx.index_stack.pop()

        if kind is BoundaryKind.COUNTER:
            count = ctx.ref_value(node.boundary.ref, node=node.name)  # type: ignore[arg-type]
            for index in range(count):
                parse_element(index)
            return
        if kind is BoundaryKind.LENGTH and not prebounded:
            # The enclosing window was already restricted by _composite_window.
            pass
        if kind is BoundaryKind.DELIMITED:
            terminator = node.boundary.delimiter or b""
            index = 0
            while not win.at_end() and not win.starts_with(terminator):
                parse_element(index)
                index += 1
            if win.starts_with(terminator):
                win.skip(len(terminator))
            return
        # LENGTH / END / prebounded: consume the window.
        index = 0
        while not win.at_end():
            parse_element(index)
            index += 1




from random import Random

from repro.core.errors import SerializationError
from repro.core.graph import FormatGraph
from repro.core.values import ValueKind, apply_chain, encode_uint, encode_value
from repro.wire.pieces import LengthSlot, PieceList
from repro.wire.spans import FieldSpan


class _LegacySerializeContext:
    """Mutable state shared by one serialization run."""

    __slots__ = (
        "message",
        "rng",
        "index_stack",
        "region_lengths",
        "length_sources",
        "counter_sources",
    )

    def __init__(self, graph: FormatGraph, message: Message, rng: Random):
        self.message = message
        self.rng = rng
        self.index_stack: list[int] = []
        #: serialized byte length of every node instance, keyed by
        #: (node name, repetition index context)
        self.region_lengths: dict[tuple[str, tuple[int, ...]], int] = {}
        #: length-field name -> node whose length it carries
        self.length_sources: dict[str, Node] = {}
        #: counter-field name -> node whose element count it carries
        self.counter_sources: dict[str, Node] = {}
        for node in graph.nodes():
            if node.boundary.kind is BoundaryKind.LENGTH:
                self.length_sources[node.boundary.ref] = node  # type: ignore[index]
            elif node.boundary.kind is BoundaryKind.COUNTER:
                self.counter_sources.setdefault(node.boundary.ref, node)  # type: ignore[arg-type]

    def resolve(self, path: FieldPath) -> FieldPath:
        """Bind the unbound repetition indices of ``path`` to the current stack."""
        return path.resolve(self.index_stack)

    def context_key(self) -> tuple[int, ...]:
        """Current repetition index context, used to key per-instance lengths."""
        return tuple(self.index_stack)


class LegacySerializer:
    """Serializes logical messages against a message format graph."""

    def __init__(self, graph: FormatGraph, *, rng: Random | None = None):
        self.graph = graph
        self._rng = rng if rng is not None else Random(0)

    # -- public API -----------------------------------------------------------

    def serialize(self, message: Message | dict) -> bytes:
        """Serialize ``message`` into its (obfuscated) wire representation."""
        data, _ = self.serialize_with_spans(message)
        return data

    def serialize_with_spans(self, message: Message | dict) -> tuple[bytes, list[FieldSpan]]:
        """Serialize and also return the byte extents of every emitted wire field."""
        logical = message if isinstance(message, Message) else Message.from_dict(message)
        context = _LegacySerializeContext(self.graph, logical, self._rng)
        pieces = self._serialize_node(self.graph.root, context)
        data, raw_spans = pieces.assemble(context.region_lengths)
        spans = [
            FieldSpan(node=node, origin=origin, start=start, end=end)
            for node, origin, start, end in raw_spans
            if node is not None
        ]
        return data, spans

    # -- node dispatch --------------------------------------------------------

    def _serialize_node(self, node: Node, ctx: _LegacySerializeContext) -> PieceList:
        if node.type is NodeType.TERMINAL:
            pieces = self._serialize_terminal(node, ctx)
        elif node.type is NodeType.SEQUENCE:
            pieces = self._serialize_sequence(node, ctx)
        elif node.type is NodeType.OPTIONAL:
            pieces = self._serialize_optional(node, ctx)
        elif node.type in (NodeType.REPETITION, NodeType.TABULAR):
            pieces = self._serialize_repetition(node, ctx)
        else:  # pragma: no cover - exhaustive enum
            raise SerializationError(f"unknown node type {node.type!r}")
        if node.mirrored:
            pieces = pieces.mirrored()
        ctx.region_lengths[(node.name, ctx.context_key())] = pieces.byte_length()
        return pieces

    # -- terminals ------------------------------------------------------------

    def _serialize_terminal(self, node: Node, ctx: _LegacySerializeContext,
                            value_override: object = None) -> PieceList:
        pieces = PieceList()
        if node.is_pad:
            size = node.boundary.size or 0
            pieces.add_bytes(bytes(ctx.rng.randrange(256) for _ in range(size)),
                             node=node.name, origin=None)
            return pieces
        if node.name in ctx.length_sources and value_override is None:
            pieces.add_slot(
                LengthSlot(
                    node=node.name,
                    target=ctx.length_sources[node.name].name,
                    width=node.boundary.size or 0,
                    endian=node.endian,
                    codec_chain=node.codec_chain,
                    mirrored=False,
                    origin=node.origin,
                    context=ctx.context_key(),
                )
            )
            return pieces
        if node.name in ctx.counter_sources and value_override is None:
            count = self._counter_value(node, ctx)
            encoded = self._encode_terminal_value(node, count)
            pieces.add_bytes(encoded, node=node.name, origin=node.origin)
            self._append_delimiter(node, pieces)
            return pieces
        value = value_override
        if value is None:
            value = self._logical_value(node, ctx)
        encoded = self._encode_terminal_value(node, value)
        pieces.add_bytes(encoded, node=node.name, origin=node.origin)
        self._append_delimiter(node, pieces)
        return pieces

    def _logical_value(self, node: Node, ctx: _LegacySerializeContext) -> object:
        if node.origin is None:
            raise SerializationError(
                f"terminal {node.name!r} carries no logical origin and no derived value"
            )
        value = ctx.message.get(ctx.resolve(node.origin))
        if value is None:
            raise SerializationError(
                f"logical message is missing field {ctx.resolve(node.origin)} "
                f"(terminal {node.name!r})"
            )
        return value

    def _counter_value(self, node: Node, ctx: _LegacySerializeContext) -> int:
        source = ctx.counter_sources[node.name]
        if source.origin is None:
            raise SerializationError(
                f"counted node {source.name!r} carries no logical origin"
            )
        return ctx.message.list_length(ctx.resolve(source.origin))

    def _encode_terminal_value(self, node: Node, value: object) -> bytes:
        assert node.value_kind is not None
        obfuscated = apply_chain(value, node.value_kind, node.codec_chain)
        size = node.boundary.size if node.boundary.kind is BoundaryKind.FIXED else None
        try:
            encoded = encode_value(obfuscated, node.value_kind, size=size, endian=node.endian)
        except SerializationError as exc:
            raise SerializationError(f"terminal {node.name!r}: {exc}") from exc
        if node.boundary.kind is BoundaryKind.DELIMITED:
            delimiter = node.boundary.delimiter or b""
            if delimiter in encoded:
                raise SerializationError(
                    f"value of delimited terminal {node.name!r} contains its "
                    f"delimiter {delimiter!r}"
                )
        return encoded

    @staticmethod
    def _append_delimiter(node: Node, pieces: PieceList) -> None:
        if node.boundary.kind is BoundaryKind.DELIMITED:
            pieces.add_bytes(node.boundary.delimiter or b"")

    # -- composites -----------------------------------------------------------

    def _serialize_sequence(self, node: Node, ctx: _LegacySerializeContext) -> PieceList:
        if node.synthesis is not None:
            return self._serialize_synthesis(node, ctx)
        pieces = PieceList()
        for child in node.children:
            pieces.extend(self._serialize_node(child, ctx))
        return pieces

    def _serialize_synthesis(self, node: Node, ctx: _LegacySerializeContext) -> PieceList:
        if node.origin is None:
            raise SerializationError(f"synthesis node {node.name!r} has no logical origin")
        value = ctx.message.get(ctx.resolve(node.origin))
        if value is None:
            raise SerializationError(
                f"logical message is missing field {ctx.resolve(node.origin)} "
                f"(synthesis node {node.name!r})"
            )
        shares = list(node.synthesis.split(value, ctx.rng, split_at=node.split_at))
        pieces = PieceList()
        for child in node.children:
            if child.name in ctx.length_sources:
                # Derived length prefix created by SplitCat on a variable-size
                # terminal: emitted as a regular length slot.
                pieces.extend(self._serialize_node(child, ctx))
                continue
            if not shares:
                raise SerializationError(
                    f"synthesis node {node.name!r} has more value children than shares"
                )
            pieces.extend(self._serialize_split_child(child, shares.pop(0), ctx))
        if shares:
            raise SerializationError(
                f"synthesis node {node.name!r} has fewer value children than shares"
            )
        return pieces

    def _serialize_split_child(self, child: Node, value: object,
                               ctx: _LegacySerializeContext) -> PieceList:
        pieces = self._serialize_terminal(child, ctx, value_override=value)
        if child.mirrored:
            pieces = pieces.mirrored()
        ctx.region_lengths[(child.name, ctx.context_key())] = pieces.byte_length()
        return pieces

    def _serialize_optional(self, node: Node, ctx: _LegacySerializeContext) -> PieceList:
        if not self._optional_present(node, ctx):
            return PieceList()
        return self._serialize_node(node.children[0], ctx)

    def _optional_present(self, node: Node, ctx: _LegacySerializeContext) -> bool:
        if node.presence_ref is not None:
            reference = self.graph.find(node.presence_ref)
            if reference is not None and reference.origin is not None:
                value = ctx.message.get(ctx.resolve(reference.origin))
                return value == node.presence_value
        if node.origin is None:
            return False
        return ctx.message.get(ctx.resolve(node.origin)) is not None

    def _serialize_repetition(self, node: Node, ctx: _LegacySerializeContext) -> PieceList:
        if node.origin is None:
            raise SerializationError(f"repeated node {node.name!r} has no logical origin")
        count = ctx.message.list_length(ctx.resolve(node.origin))
        pieces = PieceList()
        child = node.children[0]
        for index in range(count):
            ctx.index_stack.append(index)
            try:
                pieces.extend(self._serialize_node(child, ctx))
            finally:
                ctx.index_stack.pop()
        if node.type is NodeType.REPETITION and node.boundary.kind is BoundaryKind.DELIMITED:
            pieces.add_bytes(node.boundary.delimiter or b"")
        return pieces


