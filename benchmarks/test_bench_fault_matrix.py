"""Fault-matrix suite — every protocol under every transport fault model.

The PR 6 acceptance study: each registry protocol, at several obfuscation
levels, runs a live one-way session (client streams requests, server decodes
and replies; faults are injected into the client→server direction only, so a
lost segment can never deadlock a request/response ping-pong) under each
composable fault model of :mod:`repro.net.faults`.

Every faulted cell must end in one of two verified states:

* **recovered** — the server decoded an ordered subsequence of the sent wire
  payloads, byte-identical record for record, and every missing or damaged
  record is attributed to a fault the injector actually recorded (its
  :class:`~repro.net.faults.FaultCounters` are the ground truth); loss-free
  schedules must decode the *complete* stream identically;
* **stream_error** — the session died with a typed
  :class:`~repro.core.errors.StreamError` recorded in its stats (precise
  diagnosis), never an unexplained exception or a silent mismatch.

Anything else is **undiagnosed** and fails the gate.  Each faulted cell is
additionally executed twice and must reproduce bit-identically (the
flakiness guard for seeded fault schedules).

Results are written to ``BENCH_PR6.json`` at the repository root, including
degraded-attacker-view resilience cells (partial / truncated / window /
mid-rotation captures) and the CoAP interpreted-vs-generated codec identity
check at levels 0–4.  Set ``BENCH_QUICK=1`` for the reduced CI smoke
configuration.
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import sys
from pathlib import Path
from random import Random

from repro.codegen import GeneratedCodec
from repro.experiments import DegradedView, run_resilience
from repro.net import Capture, FaultPlan, ObfuscatedClient, ObfuscatedServer, connect_memory
from repro.protocols import coap, registry
from repro.transforms import Obfuscator
from repro.wire import WireCodec

QUICK = os.environ.get("BENCH_QUICK", "").lower() not in ("", "0", "false")

#: obfuscation levels per protocol (0 = the plain reference dialect).
LEVELS = (0, 2) if QUICK else (0, 2, 4)
#: requests streamed per session.
MESSAGES = 6 if QUICK else 12
#: fraction of the clean stream after which the truncation fault cuts.
TRUNCATE_FRACTION = 0.55

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR6.json"


def _fault_cells(truncate_at: int) -> list[tuple[str, FaultPlan]]:
    """The composable fault models measured per (protocol, level) cell."""
    return [
        ("clean", FaultPlan.clean(seed=101)),
        ("slowloris", FaultPlan.slow_loris(seed=102)),
        ("reorder", FaultPlan.reorder(0.35, seed=103)),
        ("duplicate", FaultPlan.duplicate(0.35, seed=104)),
        ("loss", FaultPlan.loss(0.08, seed=105, segment_size=32)),
        ("corrupt", FaultPlan.corrupt(0.06, seed=106, segment_size=32)),
        ("truncate", FaultPlan.truncate(truncate_at, seed=107)),
    ]


def _dialect(setup: registry.ProtocolSetup, level: int):
    """Obfuscated per-direction graphs of one cell (None = plain reference)."""
    if level == 0:
        return None, None
    request = Obfuscator(seed=31 + level).obfuscate(
        setup.reference_graph("request"), level).graph
    response = None
    if setup.response_graph_factory is not None:
        response = Obfuscator(seed=32 + level).obfuscate(
            setup.reference_graph("response"), level).graph
    return request, response


async def _run_session(setup: registry.ProtocolSetup, request_graph,
                       response_graph, plan: FaultPlan | None) -> dict:
    """One one-way session; returns what was sent, decoded and diagnosed."""
    capture = Capture()
    server = ObfuscatedServer(setup, request_graph=request_graph,
                              response_graph=response_graph, seed=1,
                              capture=capture, capture_received=True,
                              record_spans=False)
    # Record-framed request streams can resynchronize past corrupt payloads;
    # native streams have no boundary to resume at, so resync stays off there.
    server.resync = server.endpoint.request_framing == "record"
    client = ObfuscatedClient(setup, request_graph=request_graph,
                              response_graph=response_graph, seed=1)
    connect_memory(client, server, request_faults=plan)
    writer = client._writer
    rng = Random(7)
    sent = [await client.send(setup.message_generator(rng))
            for _ in range(MESSAGES)]
    await client.close()
    stats = server.completed[0]
    decoded = [record.data
               for record in capture.filter(direction="request")]
    counters = writer.counters.summary() if plan is not None else None
    return {
        "framing": server.endpoint.request_framing,
        "sent": sent,
        "decoded": decoded,
        "resyncs": stats.resyncs,
        "error": stats.error,
        "counters": counters,
    }


def _align(sent: list[bytes], decoded: list[bytes]) -> tuple[int, int]:
    """Greedy in-order alignment: (byte-identical matches, unmatched decodes)."""
    cursor = 0
    matched = unmatched = 0
    for raw in decoded:
        try:
            cursor = sent.index(raw, cursor) + 1
            matched += 1
        except ValueError:
            unmatched += 1
    return matched, unmatched


def _classify(run: dict, plan: FaultPlan) -> tuple[str, dict]:
    """Verify one faulted session: recovered / stream_error / undiagnosed."""
    sent, decoded = run["sent"], run["decoded"]
    matched, unmatched = _align(sent, decoded)
    missing = len(sent) - matched
    verdict = {"matched": matched, "unmatched": unmatched, "missing": missing}
    error = run["error"]
    if error is not None and not error.startswith(("StreamError", "BudgetExceeded")):
        return "undiagnosed", verdict  # an untyped failure is never acceptable
    if not plan.lossy:
        # Loss-free schedules must be invisible: complete, identical, clean.
        if error is None and decoded == sent:
            return "recovered", verdict
        return "undiagnosed", verdict
    counters = run["counters"]
    # Every record the server decoded but the client never sent needs at
    # least one damaged byte to blame; every record that never arrived needs
    # withheld or damaged bytes (or the diagnosed stream death) to blame.
    if unmatched > counters["corrupted_bytes"]:
        return "undiagnosed", verdict
    damage_explains_missing = (
        counters["undelivered_bytes"] > 0
        or counters["corrupted_bytes"] > 0
        or error is not None
    )
    if missing > 0 and not damage_explains_missing:
        return "undiagnosed", verdict
    return ("recovered" if error is None else "stream_error"), verdict


def _run_matrix() -> list[dict]:
    cells: list[dict] = []
    for key in registry.available():
        setup = registry.get(key)
        for level in LEVELS:
            request_graph, response_graph = _dialect(setup, level)
            baseline = asyncio.run(
                _run_session(setup, request_graph, response_graph, None))
            assert baseline["error"] is None, (key, level, baseline["error"])
            framed = sum(len(payload) for payload in baseline["sent"])
            if baseline["framing"] == "record":
                framed += 4 * len(baseline["sent"])
            truncate_at = max(1, int(framed * TRUNCATE_FRACTION))
            for fault, plan in _fault_cells(truncate_at):
                run = asyncio.run(
                    _run_session(setup, request_graph, response_graph, plan))
                # Flakiness guard: a seeded schedule must replay identically.
                rerun = asyncio.run(
                    _run_session(setup, request_graph, response_graph, plan))
                deterministic = (
                    run["decoded"] == rerun["decoded"]
                    and run["error"] == rerun["error"]
                    and run["counters"] == rerun["counters"]
                    and run["resyncs"] == rerun["resyncs"]
                )
                outcome, verdict = _classify(run, plan)
                cells.append({
                    "protocol": key,
                    "level": level,
                    "fault": fault,
                    "plan": plan.describe(),
                    "framing": run["framing"],
                    "sent": len(run["sent"]),
                    "decoded": len(run["decoded"]),
                    "resyncs": run["resyncs"],
                    **verdict,
                    "outcome": outcome,
                    "error": run["error"],
                    "deterministic": deterministic,
                    "counters": run["counters"],
                })
    return cells


def _degraded_view_cells() -> list[dict]:
    views = [
        DegradedView(kind="partial", fraction=0.5, seed=1),
        DegradedView(kind="truncated", fraction=0.5),
        DegradedView(kind="window", fraction=0.5, seed=2),
    ]
    cells = []
    for view in views if not QUICK else views[:1]:
        report = run_resilience(passes_levels=(1,), repeats=1, view=view)
        cells.append({
            "view": view.kind,
            "fraction": view.fraction,
            "rotations": 0,
            "plain_f1": round(report.plain.boundary_f1, 4),
            "obfuscated_f1": round(report.obfuscated[1].boundary_f1, 4),
        })
    mid = run_resilience(passes_levels=(1,), repeats=1, rotations=1,
                         view=DegradedView(kind="mid_rotation"))
    cells.append({
        "view": "mid_rotation",
        "fraction": None,
        "rotations": 1,
        "plain_f1": round(mid.plain.boundary_f1, 4),
        "obfuscated_f1": round(mid.obfuscated[1].boundary_f1, 4),
    })
    return cells


def _coap_codegen_identity() -> dict:
    """The PR's fifth protocol: interpreted == generated at every level."""
    checked = {}
    for level in range(5):
        graph = Obfuscator(seed=11 + level).obfuscate(
            coap.message_graph(), level).graph
        interpreted = WireCodec(graph, seed=42)
        generated = GeneratedCodec(graph, seed=42)
        rng = Random(99)
        count = 10 if QUICK else 25
        for _ in range(count):
            message = coap.random_request(rng)
            wire = interpreted.serialize(message)
            assert generated.serialize(message) == wire, level
            assert generated.parse(wire) == message, level
        checked[str(level)] = count
    return {"messages_per_level": checked, "identical": True}


def test_fault_matrix_suite():
    cells = _run_matrix()
    views = _degraded_view_cells()
    codegen = _coap_codegen_identity()

    report = {
        "meta": {
            "benchmark": "transport fault matrix (one-way faulted sessions)",
            "quick": QUICK,
            "levels": list(LEVELS),
            "messages_per_session": MESSAGES,
            "fault_models": [name for name, _ in _fault_cells(1)],
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "notes": (
                "faults hit the client->server direction of a one-way flow; "
                "recovered = server decoded a byte-identical ordered "
                "subsequence with every anomaly attributed to a recorded "
                "fault; stream_error = typed StreamError diagnosis; every "
                "faulted cell ran twice and replayed bit-identically"
            ),
        },
        "cells": cells,
        "outcomes": {
            outcome: sum(1 for cell in cells if cell["outcome"] == outcome)
            for outcome in ("recovered", "stream_error", "undiagnosed")
        },
        "degraded_views": views,
        "coap_codegen_identity": codegen,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print()
    print(f"{'protocol':<8} {'lvl':>3} {'fault':<9} {'framing':>7} "
          f"{'decoded':>7} {'outcome':<12} {'det':>3}")
    for cell in cells:
        print(f"{cell['protocol']:<8} {cell['level']:>3} {cell['fault']:<9} "
              f"{cell['framing']:>7} {cell['decoded']:>3}/{cell['sent']:<3} "
              f"{cell['outcome']:<12} {'yes' if cell['deterministic'] else 'NO'}")
    print(f"report written to {OUTPUT}")

    # Acceptance: full coverage, zero undiagnosed failures, no flakiness.
    protocols = {cell["protocol"] for cell in cells}
    assert len(protocols) == 5, protocols
    assert len(LEVELS) >= 2 and len(_fault_cells(1)) >= 4
    assert report["outcomes"]["undiagnosed"] == 0, [
        cell for cell in cells if cell["outcome"] == "undiagnosed"
    ]
    for cell in cells:
        assert cell["deterministic"], (cell["protocol"], cell["fault"])
        if cell["fault"] in ("clean", "slowloris", "reorder", "duplicate"):
            assert cell["outcome"] == "recovered", cell
            assert cell["decoded"] == cell["sent"], cell
    assert codegen["identical"]
    for view in views:
        assert 0.0 <= view["obfuscated_f1"] <= 1.0
