"""MQTT workload — comparative results (extension of the paper's Tables III/IV).

Runs the paper's experiment protocol on the MQTT packet specification resolved
through the protocol registry: for 1–4 obfuscations per node, the number of
applied transformations, the normalized potency metrics and the absolute
costs, each reported as ``avg[min; max]``.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.experiments import TABLE_HEADERS


def test_table_mqtt(benchmark, bench_config, make_runner):
    runner = make_runner("mqtt", seed=3)
    # The benchmarked unit is one full experiment run at one obfuscation per node.
    benchmark(lambda: runner.run_once(passes=1, run_index=0))

    table = runner.run_table(levels=bench_config["levels"])
    rows = [table[passes].table_row() for passes in sorted(table)]
    print()
    print(render_table(TABLE_HEADERS, rows,
                       title="MQTT — normalized potency, absolute costs (extension)"))
    for passes in bench_config["levels"][1:]:
        assert table[passes].applied.mean > table[1].applied.mean
    assert table[4].lines.mean >= table[1].lines.mean
    assert table[4].structs.mean >= table[1].structs.mean
