"""Shared configuration of the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(Section VII) or one of the extension studies (ablations, new protocol
workloads).  The workload sizes are deliberately smaller than the paper's
1000 runs per obfuscation level so that the whole harness completes in a few
minutes; the reported *shape* (growth trends, regression slopes, who wins) is
what matters, not the absolute repetition count.

Protocols are resolved through :mod:`repro.protocols.registry`: the
``make_runner`` fixture builds a pre-configured
:class:`~repro.experiments.ExperimentRunner` for any registered protocol.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentRunner

#: Number of random obfuscation draws per obfuscation level (paper: 1000).
RUNS_PER_LEVEL = 3
#: Number of random messages measured per draw.
MESSAGES_PER_RUN = 10
#: Obfuscation levels (transformations per node), as in the paper.
LEVELS = (1, 2, 3, 4)


@pytest.fixture(scope="session")
def bench_config():
    """Workload configuration shared by all benchmark files."""
    return {
        "runs_per_level": RUNS_PER_LEVEL,
        "messages_per_run": MESSAGES_PER_RUN,
        "levels": LEVELS,
    }


@pytest.fixture
def make_runner(bench_config):
    """Factory of experiment runners configured with the benchmark workload."""

    def factory(protocol: str, *, seed: int = 0,
                messages_per_run: int | None = None) -> ExperimentRunner:
        return ExperimentRunner(
            protocol,
            seed=seed,
            runs_per_level=bench_config["runs_per_level"],
            messages_per_run=(
                messages_per_run if messages_per_run is not None
                else bench_config["messages_per_run"]
            ),
        )

    return factory
