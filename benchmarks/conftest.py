"""Shared configuration of the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(Section VII).  The workload sizes are deliberately smaller than the paper's
1000 runs per obfuscation level so that the whole harness completes in a few
minutes; the reported *shape* (growth trends, regression slopes, who wins) is
what matters, not the absolute repetition count.
"""

from __future__ import annotations

import pytest

#: Number of random obfuscation draws per obfuscation level (paper: 1000).
RUNS_PER_LEVEL = 3
#: Number of random messages measured per draw.
MESSAGES_PER_RUN = 10
#: Obfuscation levels (transformations per node), as in the paper.
LEVELS = (1, 2, 3, 4)


@pytest.fixture(scope="session")
def bench_config():
    """Workload configuration shared by all benchmark files."""
    return {
        "runs_per_level": RUNS_PER_LEVEL,
        "messages_per_run": MESSAGES_PER_RUN,
        "levels": LEVELS,
    }
