"""Throughput suite — messages/sec of the plan-backed wire runtime.

Measures parse+serialize throughput for every registered protocol at several
obfuscation levels, in three execution modes:

* **seed** — the vendored snapshot of the seed revision's runtime
  (``legacy_wire.py``): a fresh pre-plan ``Serializer``/``Parser`` per
  message, exactly the execution model this PR replaces.  This is the
  baseline of the ISSUE's ">= 2x over the seed interpreted path" acceptance
  criterion;
* **uncached** — the current runtime with the plan cache invalidated before
  every call, i.e. a full plan recompile per message.  Reported for the
  cache's own value; note it does strictly more per-call work than the seed
  runtime, so speedups against it are larger than against ``seed``;
* **planned** — the graph is compiled once into a cached
  :class:`~repro.wire.plan.CodecPlan` and every message executes against it
  (the compile-once/execute-many discipline of the paper's generated parsers).

Results are written to ``BENCH_PR2.json`` at the repository root so that the
performance trajectory of the project is machine-readable.  Set
``BENCH_QUICK=1`` to run the reduced CI smoke configuration.
"""

from __future__ import annotations

import json
import math
import os
import platform
import sys
import time
from pathlib import Path
from random import Random

sys.path.insert(0, str(Path(__file__).resolve().parent))
from legacy_wire import LegacyParser, LegacySerializer  # noqa: E402

from repro.protocols import registry
from repro.transforms.engine import Obfuscator
from repro.wire import parse, serialize
from repro.wire.plan import invalidate

QUICK = os.environ.get("BENCH_QUICK", "").lower() not in ("", "0", "false")
#: obfuscation levels (transformations per node) measured per protocol.
LEVELS = (0, 2) if QUICK else (0, 1, 2, 3, 4)
#: random messages measured per (protocol, level) cell.
MESSAGES = 8 if QUICK else 20
#: timing rounds per mode; the best round is kept (standard minimum-timing).
ROUNDS = 3 if QUICK else 5
#: Floors asserted for the paper's two case-study protocols (geomean) and for
#: every cell.  The strict 2x acceptance gate applies to full local runs; the
#: quick smoke configuration and shared CI runners use generous floors so
#: that host load noise cannot fail an unrelated build — the real numbers are
#: always recorded in BENCH_PR2.json either way.
RELAXED = QUICK or os.environ.get("CI", "").lower() not in ("", "0", "false")
SPEEDUP_FLOOR = 1.3 if RELAXED else 2.0
CELL_FLOOR = 0.7 if RELAXED else 1.0

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR2.json"


def _measure_cell(graph, messages) -> tuple[float, float, float]:
    """(seed, uncached, planned) messages/sec for one protocol × level cell.

    The three modes are timed in interleaved rounds (seed, uncached, planned,
    seed, ...) and the best round per mode is kept, so a transient load spike
    on the host penalizes all modes alike instead of skewing one ratio.
    """

    def seed_pass():
        # Fresh legacy codec per message: the seed's module-level wrappers
        # constructed (and graph-scanned) a new Serializer/Parser per call.
        for index, message in enumerate(messages):
            data = LegacySerializer(graph, rng=Random(index)).serialize(message)
            LegacyParser(graph).parse(data)

    def planned_pass():
        for index, message in enumerate(messages):
            data = serialize(graph, message, rng=Random(index))
            parse(graph, data)

    def uncached_pass():
        for index, message in enumerate(messages):
            invalidate(graph)
            data = serialize(graph, message, rng=Random(index))
            invalidate(graph)
            parse(graph, data)

    passes = (seed_pass, uncached_pass, planned_pass)
    planned_pass()  # warm-up: compiles the plan, touches every code path
    seed_pass()     # warm-up: legacy code paths and message shapes
    best = [0.0, 0.0, 0.0]
    count = len(messages)
    for _ in range(ROUNDS):
        for position, one_pass in enumerate(passes):
            start = time.perf_counter()
            one_pass()
            elapsed = time.perf_counter() - start
            if elapsed > 0:
                best[position] = max(best[position], count / elapsed)
    return best[0], best[1], best[2]


def test_throughput_suite():
    cells = []
    for key in registry.available():
        setup = registry.get(key)
        for level in LEVELS:
            graph = setup.reference_graph()
            if level:
                graph = Obfuscator(seed=11).obfuscate(graph, level).graph
            messages = [
                setup.message_generator(Random(100 + index)) for index in range(MESSAGES)
            ]
            seed, uncached, planned = _measure_cell(graph, messages)
            cells.append(
                {
                    "protocol": key,
                    "level": level,
                    "seed_msgs_per_sec": round(seed, 1),
                    "uncached_msgs_per_sec": round(uncached, 1),
                    "planned_msgs_per_sec": round(planned, 1),
                    "speedup_vs_seed": round(planned / seed, 3) if seed else None,
                    "speedup_vs_uncached": (
                        round(planned / uncached, 3) if uncached else None
                    ),
                }
            )

    protocols = {}
    for key in registry.available():
        speedups = [cell["speedup_vs_seed"] for cell in cells
                    if cell["protocol"] == key and cell["speedup_vs_seed"]]
        protocols[key] = {
            "speedup_vs_seed_geomean": round(
                math.exp(sum(math.log(s) for s in speedups) / len(speedups)), 3
            ),
            "planned_msgs_per_sec_by_level": {
                str(cell["level"]): cell["planned_msgs_per_sec"]
                for cell in cells if cell["protocol"] == key
            },
        }

    report = {
        "meta": {
            "benchmark": "wire runtime throughput (parse+serialize round trip)",
            "quick": QUICK,
            "levels": list(LEVELS),
            "messages_per_cell": MESSAGES,
            "rounds": ROUNDS,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "baseline": (
                "seed = vendored snapshot of the seed revision's pre-plan "
                "runtime (benchmarks/legacy_wire.py), fresh codec per "
                "message; uncached = current runtime with the plan cache "
                "invalidated per call (full recompile, heavier than seed); "
                "planned = cached compiled codec plan"
            ),
        },
        "cells": cells,
        "protocols": protocols,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print()
    print(f"{'protocol':<8} {'level':>5} {'seed':>10} {'uncached':>10} "
          f"{'planned':>10} {'vs seed':>8}")
    for cell in cells:
        print(
            f"{cell['protocol']:<8} {cell['level']:>5} "
            f"{cell['seed_msgs_per_sec']:>10.0f} "
            f"{cell['uncached_msgs_per_sec']:>10.0f} "
            f"{cell['planned_msgs_per_sec']:>10.0f} "
            f"{cell['speedup_vs_seed']:>7.2f}x"
        )
    print(f"report written to {OUTPUT}")

    # Acceptance: the paper's two case-study protocols must sustain at least
    # a 2x throughput gain over the seed revision's interpreted path (relaxed
    # floor under BENCH_QUICK / CI, see RELAXED above).
    for key in ("http", "modbus"):
        assert protocols[key]["speedup_vs_seed_geomean"] >= SPEEDUP_FLOOR, (
            f"{key}: plan speedup {protocols[key]['speedup_vs_seed_geomean']} "
            f"below the {SPEEDUP_FLOOR}x floor"
        )
    # Every protocol must at least not regress vs the seed runtime.
    for cell in cells:
        assert cell["speedup_vs_seed"] is None or cell["speedup_vs_seed"] > CELL_FLOOR, cell
