"""Frozen snapshot of the pre-PR3 PRE engine (commit ff24eec).

This module vendors the quadratic inference pipeline verbatim — full-matrix
Needleman–Wunsch with traceback for every message pair, the all-pairs rescan
agglomerative clustering and the per-pair realignment of the field
delimitation — so that the resilience scale suite can measure the fast engine
against the *actual* pre-PR3 execution model reproducibly, on every machine,
without checking out the old commit.  Do not modernize this file: its value
is that it does not change.

Only the module layout differs from the snapshot (four modules folded into
one, relative imports dropped); every algorithm, constant and tie-break is
byte-for-byte the old behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

# ---------------------------------------------------------------------------
# alignment (snapshot of src/repro/pre/alignment.py)
# ---------------------------------------------------------------------------

#: Alignment gap marker.
GAP: Optional[int] = None

MATCH_SCORE = 2
MISMATCH_SCORE = -1
GAP_PENALTY = -2


@dataclass(frozen=True)
class LegacyAlignment:
    """Result of aligning two byte sequences."""

    first: tuple[Optional[int], ...]
    second: tuple[Optional[int], ...]
    score: int

    def __post_init__(self) -> None:
        if len(self.first) != len(self.second):
            raise ValueError("aligned sequences must have the same length")

    @property
    def length(self) -> int:
        return len(self.first)

    def matches(self) -> int:
        """Number of positions where both sequences carry the same byte."""
        return sum(
            1 for a, b in zip(self.first, self.second) if a is not None and a == b
        )

    def identity(self) -> float:
        """Fraction of aligned positions that match (0 when the alignment is empty)."""
        return self.matches() / self.length if self.length else 0.0


def legacy_needleman_wunsch(first: bytes, second: bytes, *,
                            match: int = MATCH_SCORE,
                            mismatch: int = MISMATCH_SCORE,
                            gap: int = GAP_PENALTY) -> LegacyAlignment:
    """Globally align two byte strings with the Needleman–Wunsch algorithm."""
    rows, cols = len(first), len(second)
    # Dynamic-programming score matrix, stored row by row.
    scores = [[0] * (cols + 1) for _ in range(rows + 1)]
    for row in range(1, rows + 1):
        scores[row][0] = row * gap
    for col in range(1, cols + 1):
        scores[0][col] = col * gap
    for row in range(1, rows + 1):
        byte_a = first[row - 1]
        score_row = scores[row]
        prev_row = scores[row - 1]
        for col in range(1, cols + 1):
            diagonal = prev_row[col - 1] + (match if byte_a == second[col - 1] else mismatch)
            upper = prev_row[col] + gap
            left = score_row[col - 1] + gap
            score_row[col] = max(diagonal, upper, left)

    aligned_first: list[Optional[int]] = []
    aligned_second: list[Optional[int]] = []
    row, col = rows, cols
    while row > 0 or col > 0:
        if row > 0 and col > 0:
            step = match if first[row - 1] == second[col - 1] else mismatch
            if scores[row][col] == scores[row - 1][col - 1] + step:
                aligned_first.append(first[row - 1])
                aligned_second.append(second[col - 1])
                row -= 1
                col -= 1
                continue
        if row > 0 and scores[row][col] == scores[row - 1][col] + gap:
            aligned_first.append(first[row - 1])
            aligned_second.append(GAP)
            row -= 1
            continue
        aligned_first.append(GAP)
        aligned_second.append(second[col - 1])
        col -= 1
    aligned_first.reverse()
    aligned_second.reverse()
    return LegacyAlignment(
        first=tuple(aligned_first),
        second=tuple(aligned_second),
        score=scores[rows][cols],
    )


def legacy_alignment_offsets(alignment: LegacyAlignment
                             ) -> list[tuple[Optional[int], Optional[int]]]:
    """Map aligned columns to (offset in first, offset in second) pairs."""
    offsets: list[tuple[Optional[int], Optional[int]]] = []
    position_first = position_second = 0
    for byte_a, byte_b in zip(alignment.first, alignment.second):
        offset_a = position_first if byte_a is not None else None
        offset_b = position_second if byte_b is not None else None
        offsets.append((offset_a, offset_b))
        if byte_a is not None:
            position_first += 1
        if byte_b is not None:
            position_second += 1
    return offsets


def legacy_similarity(first: bytes, second: bytes) -> float:
    """Alignment-based similarity in [0, 1] (identity of the global alignment)."""
    if not first and not second:
        return 1.0
    return legacy_needleman_wunsch(first, second).identity()


def legacy_pairwise_similarity(messages: Sequence[bytes]) -> list[list[float]]:
    """Symmetric similarity matrix of a list of messages."""
    count = len(messages)
    matrix = [[1.0] * count for _ in range(count)]
    for row in range(count):
        for col in range(row + 1, count):
            value = legacy_similarity(messages[row], messages[col])
            matrix[row][col] = value
            matrix[col][row] = value
    return matrix


# ---------------------------------------------------------------------------
# clustering (snapshot of src/repro/pre/clustering.py)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LegacyClustering:
    """Result of classifying a list of messages."""

    clusters: tuple[tuple[int, ...], ...]

    @property
    def count(self) -> int:
        return len(self.clusters)

    def labels(self) -> list[int]:
        """Cluster index of every message, by message position."""
        size = sum(len(cluster) for cluster in self.clusters)
        labels = [0] * size
        for index, cluster in enumerate(self.clusters):
            for member in cluster:
                labels[member] = index
        return labels


def legacy_cluster_messages(messages: Sequence[bytes], *, threshold: float = 0.8,
                            similarity_matrix: Sequence[Sequence[float]] | None = None
                            ) -> LegacyClustering:
    """Cluster messages whose average-linkage similarity exceeds ``threshold``."""
    count = len(messages)
    if count == 0:
        return LegacyClustering(clusters=())
    matrix = (
        [list(row) for row in similarity_matrix]
        if similarity_matrix is not None
        else legacy_pairwise_similarity(messages)
    )
    clusters: list[list[int]] = [[index] for index in range(count)]

    def average_linkage(first: list[int], second: list[int]) -> float:
        total = 0.0
        for a in first:
            for b in second:
                total += matrix[a][b]
        return total / (len(first) * len(second))

    while len(clusters) > 1:
        best_pair: tuple[int, int] | None = None
        best_value = threshold
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                value = average_linkage(clusters[i], clusters[j])
                if value >= best_value:
                    best_value = value
                    best_pair = (i, j)
        if best_pair is None:
            break
        i, j = best_pair
        clusters[i] = clusters[i] + clusters[j]
        del clusters[j]
    return LegacyClustering(clusters=tuple(tuple(sorted(cluster)) for cluster in clusters))


# ---------------------------------------------------------------------------
# fields (snapshot of src/repro/pre/fields.py)
# ---------------------------------------------------------------------------

#: Delimiter bytes commonly used by trace-based inference tools.
KNOWN_DELIMITERS = (0x20, 0x0D, 0x0A, 0x00, 0x3A)


@dataclass(frozen=True)
class LegacyInferredFields:
    """Field segmentation inferred for one cluster of messages."""

    reference_index: int
    reference_boundaries: tuple[int, ...]
    per_message_boundaries: dict[int, frozenset[int]]


def _legacy_constant_positions(reference: bytes, others: Sequence[bytes]) -> list[bool]:
    """For each reference offset, is the byte identical across all aligned messages?"""
    constant = [True] * len(reference)
    for other in others:
        alignment = legacy_needleman_wunsch(reference, other)
        matched = [False] * len(reference)
        for (ref_offset, _), (byte_a, byte_b) in zip(
            legacy_alignment_offsets(alignment), zip(alignment.first, alignment.second)
        ):
            if ref_offset is not None and byte_a is not None and byte_a == byte_b:
                matched[ref_offset] = True
        for offset, is_matched in enumerate(matched):
            if not is_matched:
                constant[offset] = False
    return constant


def _legacy_segment(reference: bytes, constant: Sequence[bool]) -> list[int]:
    """Cut positions derived from constancy changes and known delimiters."""
    boundaries: set[int] = set()
    for offset in range(1, len(reference)):
        if constant[offset] != constant[offset - 1]:
            boundaries.add(offset)
        if reference[offset - 1] in KNOWN_DELIMITERS and reference[offset] not in KNOWN_DELIMITERS:
            boundaries.add(offset)
        if reference[offset] in KNOWN_DELIMITERS and reference[offset - 1] not in KNOWN_DELIMITERS:
            boundaries.add(offset)
    return sorted(boundaries)


def _legacy_project_boundaries(reference: bytes, target: bytes,
                               reference_boundaries: Sequence[int]) -> frozenset[int]:
    """Map reference boundary offsets onto a target message via alignment."""
    alignment = legacy_needleman_wunsch(reference, target)
    mapping: dict[int, int] = {}
    for ref_offset, target_offset in legacy_alignment_offsets(alignment):
        if ref_offset is not None and target_offset is not None:
            mapping[ref_offset] = target_offset
    projected: set[int] = set()
    for boundary in reference_boundaries:
        if boundary in mapping:
            projected.add(mapping[boundary])
    projected.discard(0)
    projected.discard(len(target))
    return frozenset(projected)


def legacy_infer_fields(messages: Sequence[bytes], members: Sequence[int]
                        ) -> LegacyInferredFields:
    """Infer the field segmentation of one cluster."""
    if not members:
        return LegacyInferredFields(reference_index=-1, reference_boundaries=(),
                                    per_message_boundaries={})
    reference_index = max(members, key=lambda index: len(messages[index]))
    reference = messages[reference_index]
    others = [messages[index] for index in members if index != reference_index]
    constant = (
        _legacy_constant_positions(reference, others) if others else [True] * len(reference)
    )
    reference_boundaries = _legacy_segment(reference, constant)
    per_message: dict[int, frozenset[int]] = {}
    for index in members:
        if index == reference_index:
            per_message[index] = frozenset(
                boundary for boundary in reference_boundaries
                if 0 < boundary < len(reference)
            )
        else:
            per_message[index] = _legacy_project_boundaries(
                reference, messages[index], reference_boundaries
            )
    return LegacyInferredFields(
        reference_index=reference_index,
        reference_boundaries=tuple(reference_boundaries),
        per_message_boundaries=per_message,
    )


# ---------------------------------------------------------------------------
# inference (snapshot of src/repro/pre/inference.py)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LegacyInferenceResult:
    """Outcome of running the PRE engine on a trace."""

    messages: tuple[bytes, ...]
    clustering: LegacyClustering
    fields: tuple[LegacyInferredFields, ...]

    def boundaries_for(self, message_index: int) -> frozenset[int]:
        """Field boundary offsets inferred for one captured message."""
        for inferred in self.fields:
            if message_index in inferred.per_message_boundaries:
                return inferred.per_message_boundaries[message_index]
        return frozenset()

    @property
    def cluster_count(self) -> int:
        return self.clustering.count


def legacy_infer_formats(messages: Sequence[bytes], *,
                         similarity_threshold: float = 0.65) -> LegacyInferenceResult:
    """Classify ``messages`` and infer each class's field segmentation."""
    trace = tuple(bytes(message) for message in messages)
    if not trace:
        return LegacyInferenceResult(
            messages=(), clustering=LegacyClustering(clusters=()), fields=()
        )
    matrix = legacy_pairwise_similarity(trace)
    clustering = legacy_cluster_messages(
        trace, threshold=similarity_threshold, similarity_matrix=matrix
    )
    fields = tuple(
        legacy_infer_fields(trace, cluster) for cluster in clustering.clusters
    )
    return LegacyInferenceResult(messages=trace, clustering=clustering, fields=fields)
