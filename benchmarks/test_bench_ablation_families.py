"""Ablation (extension, not in the paper): contribution of each transformation family.

For every transformation family of Table I (splits, constants, boundary
change, padding, mirroring, tabular splits, child moves), the obfuscation
engine is restricted to that family alone and the resulting potency (lines,
structs) and cost (buffer size) are compared against the full transformation
set.  This quantifies the design choice, discussed in DESIGN.md, of combining
ordering and aggregation transformations.
"""

from __future__ import annotations

from random import Random

from repro.analysis import render_table
from repro.codegen import generate_module
from repro.metrics import measure_source
from repro.protocols import modbus
from repro.transforms import Obfuscator, TRANSFORMATION_FAMILIES, default_transformations, family
from repro.wire import WireCodec


def _measure(transformations, seed=0, passes=2):
    graph = modbus.request_graph()
    result = Obfuscator(transformations, seed=seed).obfuscate(graph, passes)
    reference = measure_source(generate_module(graph))
    metrics = measure_source(generate_module(result.graph)).normalized(reference)
    codec = WireCodec(result.graph, seed=seed)
    rng = Random(seed)
    sizes = [len(codec.serialize(modbus.random_request(rng))) for _ in range(10)]
    return result.applied_count, metrics, sum(sizes) / len(sizes)


def test_ablation_transformation_families(benchmark):
    benchmark(lambda: Obfuscator(family("const"), seed=0).obfuscate(modbus.request_graph(), 1))

    rows = []
    applied, metrics, buffer_size = _measure(default_transformations())
    rows.append(["all families", applied, f"{metrics.lines:.2f}", f"{metrics.structs:.2f}",
                 f"{metrics.call_graph_size:.2f}", f"{buffer_size:.0f}"])
    for name in sorted(TRANSFORMATION_FAMILIES):
        applied, metrics, buffer_size = _measure(family(name))
        rows.append([name, applied, f"{metrics.lines:.2f}", f"{metrics.structs:.2f}",
                     f"{metrics.call_graph_size:.2f}", f"{buffer_size:.0f}"])
    print()
    print(render_table(
        ["Family", "Applied", "Lines (norm)", "Structs (norm)", "CG size (norm)",
         "Buffer (bytes)"],
        rows,
        title="Ablation — potency/cost per transformation family (Modbus, 2 passes)",
    ))

    # Sanity of the ablation: one row per family plus the full set, no family
    # shrinks the generated library below the non-obfuscated reference, and the
    # structure-preserving families (const, childmove, mirror) leave the
    # structural potency untouched while the splitting families grow it.
    assert len(rows) == 1 + len(TRANSFORMATION_FAMILIES)
    by_family = {row[0]: row for row in rows}
    for row in rows:
        assert float(row[2]) >= 0.99 and float(row[3]) >= 0.99
    assert float(by_family["split"][3]) > float(by_family["const"][3])
    assert float(by_family["all families"][3]) > 1.0
