"""Chaos-soak suite — resilient sessions under seeded connection-level chaos.

The PR 7 acceptance study: each registry protocol runs request/response
sessions, at several concurrency levels, while a seeded
:class:`~repro.net.faults.ChaosSchedule` makes the transport hostile —
mid-session cuts (RST), indefinite stalls (silence, no EOF), loss composed
with a cut, and flaky re-dials.  Clients carry the full resilience stack
(idle-read deadlines, seeded retry/backoff, reconnect-with-rotation-resume)
on a :class:`~repro.net.resilience.VirtualClock`, so the whole soak runs in
virtual time: no real sleeps, bit-reproducible schedules.

Every cell must end **recovered with a complete audit trail**:

* every request got its reply (the chaos schedule heals after its budgeted
  failures, so a correctly retrying client always finishes);
* the recovery is *accounted*: scenario-specific evidence in the stats
  counters (reconnects for cuts, idle-read timeouts for stalls, dial retries
  for flaky upstreams) and trace events agreeing with the counters;
* every server-side session the chaos killed carries a **typed** diagnosis
  in its stats entry — never a silent drop or an unexplained exception.

Anything else is **undiagnosed** and fails the gate.  Each cell runs twice
and the full recovery record — every client's
:meth:`~repro.net.resilience.ResilienceTrace.to_json`, all counters, the
reply digest — must be byte-identical (the seeded-recovery flakiness guard).

Two companion sections ride along: reconnect-with-rotation-resume (a rotated
session survives a mid-session cut and resumes on the last announced key id)
and the circuit breaker tripping on a dead upstream dial.  Results are
written to ``BENCH_PR7.json`` at the repository root.  Set ``BENCH_QUICK=1``
for the reduced CI smoke configuration.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import platform
import sys
from pathlib import Path
from random import Random

from repro.net import (
    ChaosSchedule,
    CircuitBreaker,
    CircuitOpen,
    FaultPlan,
    FaultyWriter,
    ObfuscatedClient,
    ObfuscatedProxy,
    ObfuscatedServer,
    PlanBook,
    RetriesExhausted,
    RetryPolicy,
    TimeoutConfig,
    VirtualClock,
    connect_memory,
    derive_session_key,
    memory_pipe,
)
from repro.net.faults import CHAOS_SCENARIOS
from repro.protocols import registry

QUICK = os.environ.get("BENCH_QUICK", "").lower() not in ("", "0", "false")

#: requests per client session.
MESSAGES = 4 if QUICK else 8
#: concurrent clients against one server, per cell.
CONCURRENCY = (1, 2) if QUICK else (1, 4)
#: byte window of the session in which connection faults land; narrow enough
#: that even the smallest protocol's shortest (quick-mode) session crosses
#: it in both directions — a drawn offset past the stream would mean the
#: fault never fires and the cell has no recovery to audit.
FAULT_WINDOW = (8, 24)
#: hostile connection attempts before the schedule heals the link.
FAILURES = 1

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR7.json"

#: error prefixes that count as a *typed* diagnosis on a chaos-killed
#: server session (the audit-trail requirement).
TYPED_ERRORS = ("StreamError", "ConnectionResetError", "ConnectionError",
                "IncompleteReadError", "DeadlineExceeded", "DrainCancelled",
                "OSError")


def _request_messages(setup: registry.ProtocolSetup, rng: Random,
                      count: int) -> list:
    """``count`` generated messages the protocol's responder replies to.

    Some responders model one-way packet types (MQTT CONNECT has no reply in
    this responder, for instance); a request/response soak must only await
    replies that exist.  The probe uses a throwaway rng, so the stream stays
    a pure function of ``rng``'s seed.
    """
    messages = []
    while len(messages) < count:
        message = setup.message_generator(rng)
        if setup.responder(message, Random(0)) is not None:
            messages.append(message)
    return messages


def _chaos_client(setup: registry.ProtocolSetup, server: ObfuscatedServer,
                  schedule: ChaosSchedule, clock: VirtualClock,
                  index: int) -> ObfuscatedClient:
    """One resilient client whose connection attempts follow ``schedule``.

    Attempt 1 is the initial connection; the installed reconnect factory
    numbers re-dials 2, 3, … and threads each attempt's fault plan (or dial
    refusal) from the schedule — the chaos stays hostile across reconnects
    until the schedule heals.
    """
    client = ObfuscatedClient(
        setup, session_id=f"chaos-{schedule.scenario}-{index}", clock=clock,
        retry=RetryPolicy(attempts=schedule.failures + 3, base_delay=0.2,
                          seed=schedule.seed),
        timeouts=TimeoutConfig(idle_read=2.0, drain=1.0),
    )
    stall_side = schedule.scenario == "stall"
    if schedule.scenario == "dial_flaky":
        # The healthy-looking first connection still dies (a deterministic
        # cut) so the flaky re-dial path is actually exercised.
        first_plan = FaultPlan.cut(sum(FAULT_WINDOW) // 2, seed=schedule.seed)
    else:
        first_plan = schedule.plan_for_attempt(1)
    connect_memory(client, server,
                   request_faults=None if stall_side else first_plan,
                   response_faults=first_plan if stall_side else None)
    state = {"attempt": 1}

    async def factory():
        state["attempt"] += 1
        attempt = state["attempt"]
        if schedule.dial_fails(attempt - 1):
            raise ConnectionRefusedError(
                f"chaos schedule refuses dial attempt {attempt}")
        plan = schedule.plan_for_attempt(attempt)
        (reader, writer), (up_reader, up_writer) = memory_pipe()
        client._server_task = asyncio.ensure_future(
            server.serve_session(up_reader, up_writer,
                                 session_id=client.session_id,
                                 fault_plan=plan if stall_side else None))
        if plan is not None and not stall_side:
            writer = FaultyWriter(writer, plan)
        return reader, writer

    return client.set_reconnect(factory)


async def _soak_once(setup: registry.ProtocolSetup, scenario: str,
                     concurrency: int, seed: int,
                     clock: VirtualClock) -> dict:
    """One soak cell: ``concurrency`` chaos clients against one server."""
    server = ObfuscatedServer(setup, seed=1, record_spans=False)
    digest = hashlib.sha256()
    clients = []

    async def drive(index: int) -> dict:
        schedule = ChaosSchedule(scenario=scenario, seed=seed * 100 + index,
                                 failures=FAILURES, fault_window=FAULT_WINDOW,
                                 loss_rate=0.05, segment_size=24)
        client = _chaos_client(setup, server, schedule, clock, index)
        clients.append(client)
        rng = Random(1000 + index)
        replies = []
        for message in _request_messages(setup, rng, MESSAGES):
            replies.append(await client.request(message))
        await client.close()
        stats = client.stats
        return {
            "schedule": schedule.fingerprint,
            "replies": len(replies),
            "reply_digest": hashlib.sha256(
                "\n".join(str(reply) for reply in replies).encode()
            ).hexdigest()[:16],
            "retries": stats.retries,
            "reconnects": stats.reconnects,
            "timeouts": stats.timeouts,
            "drain_cancels": stats.drain_cancels,
            "error": stats.error,
            "trace": client.trace.to_json(),
        }

    results = await asyncio.gather(*(drive(index)
                                     for index in range(concurrency)))
    for result in results:
        digest.update(result["trace"].encode())
    sessions = [{"session": stats.session,
                 "received": stats.received,
                 "error": stats.error}
                for stats in server.completed]
    return {
        "clients": list(results),
        "server_sessions": sessions,
        "trace_digest": digest.hexdigest()[:16],
    }


def _run_soak(setup: registry.ProtocolSetup, scenario: str,
              concurrency: int, seed: int) -> dict:
    clock = VirtualClock()

    async def scenario_main():
        return await clock.run(_soak_once(setup, scenario, concurrency,
                                          seed, clock))

    return asyncio.run(scenario_main())


def _classify(run: dict, scenario: str) -> tuple[str, list[str]]:
    """Verify one soak cell: recovered with full accounting, or undiagnosed."""
    problems: list[str] = []
    for index, client in enumerate(run["clients"]):
        who = f"client {index}"
        if client["replies"] != MESSAGES:
            problems.append(f"{who}: {client['replies']}/{MESSAGES} replies")
        trace = json.loads(client["trace"])
        counts = {kind: sum(1 for event in trace if event["kind"] == kind)
                  for kind in ("retry", "reconnect", "timeout", "drain_cancel")}
        # Trace events and stats counters must tell the same story.
        for kind, stat in (("retry", "retries"), ("reconnect", "reconnects"),
                           ("timeout", "timeouts"),
                           ("drain_cancel", "drain_cancels")):
            if counts[kind] != client[stat]:
                problems.append(
                    f"{who}: trace {kind}={counts[kind]} != stats "
                    f"{stat}={client[stat]}")
        # Scenario-specific evidence: the recovery must be *visible* in the
        # counters, not an accident of the fault never firing.
        if client["reconnects"] < 1:
            problems.append(f"{who}: chaos left no reconnect to account")
        if scenario == "stall" and client["timeouts"] < 1:
            problems.append(f"{who}: stall not diagnosed by idle-read deadline")
        if scenario == "dial_flaky" and client["retries"] < FAILURES:
            problems.append(f"{who}: flaky dials not retried")
    for session in run["server_sessions"]:
        error = session["error"]
        if error is not None and not error.startswith(TYPED_ERRORS):
            problems.append(f"{session['session']}: untyped error {error!r}")
    return ("recovered" if not problems else "undiagnosed"), problems


def _run_matrix() -> list[dict]:
    cells: list[dict] = []
    for key in registry.available():
        setup = registry.get(key)
        for scenario in CHAOS_SCENARIOS:
            for concurrency in CONCURRENCY:
                seed = 7 + len(cells)
                run = _run_soak(setup, scenario, concurrency, seed)
                rerun = _run_soak(setup, scenario, concurrency, seed)
                deterministic = (
                    json.dumps(run, sort_keys=True)
                    == json.dumps(rerun, sort_keys=True))
                outcome, problems = _classify(run, scenario)
                cells.append({
                    "protocol": key,
                    "scenario": scenario,
                    "concurrency": concurrency,
                    "seed": seed,
                    "replies": sum(client["replies"]
                                   for client in run["clients"]),
                    "expected": MESSAGES * concurrency,
                    "reconnects": sum(client["reconnects"]
                                      for client in run["clients"]),
                    "retries": sum(client["retries"]
                                   for client in run["clients"]),
                    "timeouts": sum(client["timeouts"]
                                    for client in run["clients"]),
                    "server_sessions": len(run["server_sessions"]),
                    "trace_digest": run["trace_digest"],
                    "outcome": outcome,
                    "problems": problems,
                    "deterministic": deterministic,
                })
    return cells


# ---------------------------------------------------------------------------
# companion sections
# ---------------------------------------------------------------------------


async def _rotation_resume_once(setup: registry.ProtocolSetup,
                                clock: VirtualClock, *,
                                cut_at: int | None) -> dict:
    """A rotated session under a response-direction cut placed after the
    rotation point; ``cut_at=None`` runs the clean baseline used to aim it."""
    keys = [derive_session_key(setup, passes=1, seed=40 + offset)
            for offset in (0, 1)]
    server = ObfuscatedServer(setup, plan_book=PlanBook(keys), seed=1,
                              framing="record", record_spans=False)
    client = ObfuscatedClient(
        setup, plan_book=PlanBook(keys), framing="record", clock=clock,
        retry=RetryPolicy(attempts=3, base_delay=0.2, seed=13),
        timeouts=TimeoutConfig(idle_read=2.0, drain=1.0))
    plan = FaultPlan.cut(cut_at, seed=3) if cut_at is not None else None
    connect_memory(client, server, response_faults=plan)
    rng = Random(77)
    messages = _request_messages(setup, rng, 4)
    await client.request(messages[0])
    bytes_at_rotation = client.stats.bytes_received
    await client.rotate(keys[1].key_id)
    for message in messages[1:]:
        await client.request(message)
    await client.close()
    resumed = server.completed[-1]
    return {
        "bytes_at_rotation": bytes_at_rotation,
        "bytes_total": client.stats.bytes_received,
        "announced_key": keys[1].key_id,
        "reconnects": client.stats.reconnects,
        "trace": client.trace.to_json(),
        "resumed_session": {"rotations": resumed.rotations,
                            "received": resumed.received,
                            "error": resumed.error},
    }


def _rotation_resume_cells() -> list[dict]:
    cells = []
    for key in registry.available():
        setup = registry.get(key)

        def run_cell(cut_at):
            clock = VirtualClock()

            async def main():
                return await clock.run(
                    _rotation_resume_once(setup, clock, cut_at=cut_at))

            return asyncio.run(main())

        baseline = run_cell(None)
        # Aim the cut a third of the way into the post-rotation response
        # stream: the client has announced key 2 when the transport dies.
        span = baseline["bytes_total"] - baseline["bytes_at_rotation"]
        cut_at = baseline["bytes_at_rotation"] + max(1, span // 3)
        run = run_cell(cut_at)
        rerun = run_cell(cut_at)
        trace = json.loads(run["trace"])
        kinds = [event["kind"] for event in trace]
        resumes = [event for event in trace if event["kind"] == "resume"]
        cells.append({
            "protocol": key,
            "cut_at": cut_at,
            "reconnects": run["reconnects"],
            "trace_kinds": kinds,
            "resumed_on": resumes[-1]["key_id"] if resumes else None,
            "announced_key": run["announced_key"],
            "resumed_session": run["resumed_session"],
            "deterministic": run == rerun,
        })
    return cells


def _breaker_trip_cell() -> dict:
    """A dead upstream dial storm: retried, counted, then refused fast."""

    def run_cell():
        clock = VirtualClock()

        async def main():
            breaker = CircuitBreaker(failure_threshold=2, reset_timeout=60.0,
                                     clock=clock)
            proxy = ObfuscatedProxy(
                "modbus", clock=clock, breaker=breaker,
                retry=RetryPolicy(attempts=4, base_delay=0.2, jitter=0.0,
                                  seed=0),
                timeouts=TimeoutConfig(connect=1.0))
            outcome = None
            try:
                # Port 1 on localhost: nothing listens there.
                await proxy.dial_upstream("127.0.0.1", 1)
            except (RetriesExhausted, CircuitOpen) as exc:
                outcome = type(exc).__name__
            refused_fast = False
            try:
                await proxy.dial_upstream("127.0.0.1", 1)
            except CircuitOpen:
                refused_fast = True
            return {
                "outcome": outcome,
                "dial_failures": proxy.dial_failures,
                "breaker_state": breaker.state,
                "trips": breaker.trips,
                "refused_fast": refused_fast,
                "trace": proxy.trace.to_json(),
            }

        return asyncio.run(clock_run(clock, main))

    def clock_run(clock, main):
        async def wrapper():
            return await clock.run(main())
        return wrapper()

    run = run_cell()
    rerun = run_cell()
    return {**run, "deterministic": run == rerun}


# ---------------------------------------------------------------------------
# the gate
# ---------------------------------------------------------------------------


def test_chaos_soak_suite():
    cells = _run_matrix()
    rotation = _rotation_resume_cells()
    breaker = _breaker_trip_cell()

    report = {
        "meta": {
            "benchmark": "chaos soak (resilient sessions under seeded "
                         "connection-level chaos)",
            "quick": QUICK,
            "scenarios": list(CHAOS_SCENARIOS),
            "concurrency": list(CONCURRENCY),
            "messages_per_client": MESSAGES,
            "failures_per_schedule": FAILURES,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "notes": (
                "virtual-clock soak: every cell must recover completely with "
                "scenario-specific evidence in its counters (reconnects for "
                "cuts, idle-read timeouts for stalls, dial retries for flaky "
                "upstreams), trace events agreeing with stats, and typed "
                "diagnoses on every chaos-killed server session; every cell "
                "ran twice and its full recovery record replayed "
                "byte-identically"
            ),
        },
        "cells": cells,
        "outcomes": {
            outcome: sum(1 for cell in cells if cell["outcome"] == outcome)
            for outcome in ("recovered", "undiagnosed")
        },
        "rotation_resume": rotation,
        "breaker_trip": breaker,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print()
    print(f"{'protocol':<8} {'scenario':<10} {'conc':>4} {'replies':>9} "
          f"{'reconn':>6} {'retry':>5} {'tmo':>4} {'outcome':<11} {'det':>3}")
    for cell in cells:
        print(f"{cell['protocol']:<8} {cell['scenario']:<10} "
              f"{cell['concurrency']:>4} "
              f"{cell['replies']:>4}/{cell['expected']:<4} "
              f"{cell['reconnects']:>6} {cell['retries']:>5} "
              f"{cell['timeouts']:>4} {cell['outcome']:<11} "
              f"{'yes' if cell['deterministic'] else 'NO'}")
    print(f"report written to {OUTPUT}")

    # Acceptance: full coverage, zero undiagnosed cells, no flakiness,
    # rotation survives the cut, the breaker trips and refuses fast.
    protocols = {cell["protocol"] for cell in cells}
    assert len(protocols) == 5, protocols
    assert {cell["scenario"] for cell in cells} == set(CHAOS_SCENARIOS)
    assert report["outcomes"]["undiagnosed"] == 0, [
        (cell["protocol"], cell["scenario"], cell["problems"])
        for cell in cells if cell["outcome"] == "undiagnosed"
    ]
    for cell in cells:
        assert cell["deterministic"], (cell["protocol"], cell["scenario"])
        assert cell["replies"] == cell["expected"], cell
    for cell in rotation:
        assert cell["deterministic"], cell["protocol"]
        assert cell["reconnects"] >= 1, cell
        assert cell["resumed_on"] == cell["announced_key"], cell
        assert cell["resumed_session"]["rotations"] == 1, cell
        assert cell["resumed_session"]["error"] is None, cell
        assert "resume" in cell["trace_kinds"], cell
    assert breaker["deterministic"]
    assert breaker["trips"] >= 1
    assert breaker["breaker_state"] == "open"
    assert breaker["refused_fast"]
    assert breaker["dial_failures"] == 2  # threshold trips before attempt 3
