"""Figure 5 — Modbus parsing and serialization time vs. applied transformations.

Regenerates the paper's Figure 5 (same layout as Figure 4, Modbus workload).
"""

from __future__ import annotations

from random import Random

from repro.codegen import GeneratedCodec
from repro.experiments import ExperimentRunner
from repro.protocols import modbus
from repro.transforms import Obfuscator


def test_fig5_modbus_times(benchmark, bench_config):
    graph = Obfuscator(seed=0).obfuscate(modbus.request_graph(), 2).graph
    codec = GeneratedCodec(graph, seed=0)
    data = codec.serialize(modbus.random_request(Random(0)))
    benchmark(lambda: codec.parse(data))

    runner = ExperimentRunner(
        "modbus",
        seed=6,
        runs_per_level=bench_config["runs_per_level"],
        messages_per_run=bench_config["messages_per_run"],
    )
    runs, parse_fit, serialize_fit = runner.time_series(levels=bench_config["levels"])
    print()
    print("Figure 5 — Modbus parsing/serialization time vs. applied transformations")
    for run in runs:
        print(f"  applied={run.applied:4d}  parse={run.parse_ms:.4f} ms  "
              f"serialize={run.serialize_ms:.4f} ms")
    print(f"  parsing regression:       {parse_fit.format()}")
    print(f"  serialization regression: {serialize_fit.format()}")
    # Modbus messages are tiny (tens of bytes), so per-message timing noise can
    # produce a marginally negative fitted slope on small workloads; the paper's
    # claim is that the growth stays gentle, which the tolerance below checks.
    assert parse_fit.slope >= -0.005
    assert serialize_fit.slope >= -0.005
    assert max(run.parse_ms for run in runs) < 50.0
    assert max(run.serialize_ms for run in runs) < 50.0
