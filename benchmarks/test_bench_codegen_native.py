"""Specialized-codegen throughput suite — the native-speed codec tier.

Measures parse and serialize throughput of the specializing compiler's
straight-line modules (:func:`repro.codegen.generate_specialized_module`,
shared per dialect fingerprint through :func:`repro.codegen.cached_module`)
against the **planned** interpreted runtime — the cached
:class:`~repro.wire.plan.CodecPlan` execution path that PR 2 established as
the fast tier.  That is a deliberately strong baseline: the seed revision's
per-message codecs are slower still (see ``BENCH_PR2.json``).

Every cell proves byte-identity before it is timed: the SHA-256 of the
concatenation of all wires produced by the planned path and by the
specialized module (same messages, same per-message RNG seeds) must match,
and the digest must be bit-identical across two independent passes.  A net
cell drives full obfuscated sessions through :mod:`repro.net` (record
framing over a memory pipe) with ``specialize`` off and on and checks the
captured wire records digest-identical.

Results go to ``BENCH_PR10.json`` at the repository root.  Acceptance: the
specialized tier sustains a >= 3x geometric-mean speedup over the planned
path (relaxed floor under ``BENCH_QUICK=1`` / CI so shared-runner noise
cannot fail an unrelated build — the measured numbers are recorded either
way).
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import math
import os
import platform
import sys
import time
from pathlib import Path
from random import Random

from repro.codegen import cached_module, clear_module_cache
from repro.net import Capture, ObfuscatedClient, ObfuscatedServer
from repro.protocols import registry
from repro.transforms.engine import Obfuscator
from repro.wire import parse, serialize

QUICK = os.environ.get("BENCH_QUICK", "").lower() not in ("", "0", "false")
LEVELS = (0, 2) if QUICK else (0, 1, 2, 3, 4)
MESSAGES = 8 if QUICK else 25
ROUNDS = 3 if QUICK else 5
RELAXED = QUICK or os.environ.get("CI", "").lower() not in ("", "0", "false")
#: The ISSUE's acceptance gate for full local runs; generous floors for the
#: quick smoke configuration and shared CI runners.
GEOMEAN_FLOOR = 1.5 if RELAXED else 3.0
CELL_FLOOR = 0.8 if RELAXED else 1.2
NET_REQUESTS = 12 if QUICK else 40

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR10.json"


def _wire_digest(graph, module, messages) -> tuple[str, str, list[bytes]]:
    """(planned digest, specialized digest, wires) over all messages.

    Both paths serialize the same messages with the same per-message RNG
    seed, so the digests must agree byte for byte.
    """
    planned = hashlib.sha256()
    specialized = hashlib.sha256()
    wires = []
    for index, message in enumerate(messages):
        expected = serialize(graph, message, rng=Random(index))
        # The module-level entry point takes the plain field dict; the
        # SpecializedCodec wrapper does this unwrapping in normal use.
        produced = module.serialize(message.raw, rng=Random(index))
        planned.update(expected)
        specialized.update(produced)
        wires.append(expected)
    return planned.hexdigest(), specialized.hexdigest(), wires


def _measure_cell(graph, module, messages, wires):
    """Best-round msgs/sec: (planned parse, spec parse, planned ser, spec ser).

    Modes are timed in interleaved rounds so a transient host load spike
    penalizes all of them alike instead of skewing one ratio.
    """
    raws = [message.raw for message in messages]

    def planned_parse():
        for wire in wires:
            parse(graph, wire)

    def spec_parse():
        module_parse = module.parse
        for wire in wires:
            module_parse(wire)

    def planned_serialize():
        for index, message in enumerate(messages):
            serialize(graph, message, rng=Random(index))

    def spec_serialize():
        module_serialize = module.serialize
        for index, raw in enumerate(raws):
            module_serialize(raw, rng=Random(index))

    passes = (planned_parse, spec_parse, planned_serialize, spec_serialize)
    for one_pass in passes:  # warm-up: plan compile, module import side caches
        one_pass()
    best = [0.0, 0.0, 0.0, 0.0]
    count = len(messages)
    for _ in range(ROUNDS):
        for position, one_pass in enumerate(passes):
            start = time.perf_counter()
            one_pass()
            elapsed = time.perf_counter() - start
            if elapsed > 0:
                best[position] = max(best[position], count / elapsed)
    return best


def _net_cell() -> dict:
    """Full request/reply sessions over a memory pipe, specialize off vs on."""

    async def traffic(specialize: bool):
        capture = Capture()
        server = ObfuscatedServer("modbus", framing="record", seed=7,
                                  capture=capture, capture_received=True,
                                  specialize=specialize)
        client = ObfuscatedClient("modbus", framing="record", seed=7,
                                  specialize=specialize)
        client.connect_memory(server)
        generator = registry.get("modbus").message_generator
        rng = Random(31)
        requests = [generator(rng) for _ in range(NET_REQUESTS)]
        start = time.perf_counter()
        for message in requests:
            await client.request(message)
        elapsed = time.perf_counter() - start
        await client.close()
        digest = hashlib.sha256()
        for record in capture.records:
            digest.update(record.data)
        return len(requests) / elapsed if elapsed > 0 else 0.0, digest.hexdigest()

    interp_rate, interp_digest = asyncio.run(traffic(False))
    spec_rate, spec_digest = asyncio.run(traffic(True))
    assert interp_digest == spec_digest, (
        "net sessions: specialized wire records diverge from interpreted")
    return {
        "protocol": "modbus",
        "framing": "record",
        "requests": NET_REQUESTS,
        "interpreted_reqs_per_sec": round(interp_rate, 1),
        "specialized_reqs_per_sec": round(spec_rate, 1),
        "speedup": round(spec_rate / interp_rate, 3) if interp_rate else None,
        "wire_digest": interp_digest,
    }


def test_specialized_codegen_suite():
    clear_module_cache()
    cells = []
    for key in registry.available():
        setup = registry.get(key)
        for level in LEVELS:
            graph = setup.reference_graph()
            if level:
                graph = Obfuscator(seed=11).obfuscate(graph, level).graph
            module = cached_module(graph, specialize=True)
            messages = [
                setup.message_generator(Random(100 + index))
                for index in range(MESSAGES)
            ]
            planned_digest, spec_digest, wires = _wire_digest(
                graph, module, messages)
            assert planned_digest == spec_digest, (
                f"{key} level {level}: specialized wires diverge from planned")
            # Determinism: a second independent pass must be bit-identical.
            repeat_planned, repeat_spec, _ = _wire_digest(graph, module, messages)
            assert (repeat_planned, repeat_spec) == (planned_digest, spec_digest), (
                f"{key} level {level}: serialization is not run-to-run stable")
            for wire in wires:
                assert module.parse(wire) == parse(graph, wire)

            p_parse, s_parse, p_ser, s_ser = _measure_cell(
                graph, module, messages, wires)
            cells.append(
                {
                    "protocol": key,
                    "level": level,
                    "planned_parse_msgs_per_sec": round(p_parse, 1),
                    "specialized_parse_msgs_per_sec": round(s_parse, 1),
                    "planned_serialize_msgs_per_sec": round(p_ser, 1),
                    "specialized_serialize_msgs_per_sec": round(s_ser, 1),
                    "parse_speedup": round(s_parse / p_parse, 3) if p_parse else None,
                    "serialize_speedup": round(s_ser / p_ser, 3) if p_ser else None,
                    "wire_sha256": planned_digest,
                }
            )

    ratios = [
        ratio
        for cell in cells
        for ratio in (cell["parse_speedup"], cell["serialize_speedup"])
        if ratio
    ]
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    net = _net_cell()

    report = {
        "meta": {
            "benchmark": "specialized codegen vs planned interpreted runtime",
            "quick": QUICK,
            "levels": list(LEVELS),
            "messages_per_cell": MESSAGES,
            "rounds": ROUNDS,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "baseline": (
                "planned = cached CodecPlan interpreted execution (the fast "
                "tier gated by BENCH_PR2); specialized = straight-line module "
                "from repro.codegen.generate_specialized_module shared via "
                "cached_module.  Every cell's wire bytes are sha256-verified "
                "identical across both paths and across two runs before "
                "timing."
            ),
            "gate": {
                "geomean_floor": GEOMEAN_FLOOR,
                "cell_floor": CELL_FLOOR,
                "relaxed": RELAXED,
            },
        },
        "cells": cells,
        "geomean_speedup": round(geomean, 3),
        "net_session": net,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print()
    print(f"{'protocol':<8} {'level':>5} {'parse':>8} {'serialize':>10}")
    for cell in cells:
        print(
            f"{cell['protocol']:<8} {cell['level']:>5} "
            f"{cell['parse_speedup']:>7.2f}x {cell['serialize_speedup']:>9.2f}x"
        )
    print(f"geomean {geomean:.2f}x   "
          f"net session {net['speedup']:.2f}x ({net['framing']} framing)")
    print(f"report written to {OUTPUT}")

    assert geomean >= GEOMEAN_FLOOR, (
        f"specialized tier geomean {geomean:.2f}x below the "
        f"{GEOMEAN_FLOOR}x floor"
    )
    for cell in cells:
        for axis in ("parse_speedup", "serialize_speedup"):
            assert cell[axis] is None or cell[axis] > CELL_FLOOR, cell
