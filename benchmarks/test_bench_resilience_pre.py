"""Section VII.D — resilience assessment against trace-based reverse engineering.

The paper's assessment is qualitative (a Netzob expert recovered the plain
Modbus format but failed on the obfuscated one).  This benchmark quantifies
the same claim with the built-in PRE engine: field-boundary F1, classification
purity and cluster-count inflation on the plain trace versus obfuscated traces
at 1 and 2 obfuscations per node.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.experiments import run_resilience
from repro.pre import infer_formats
from repro.protocols import modbus
from repro.wire import WireCodec
from random import Random


def test_resilience_against_trace_inference(benchmark):
    # Benchmarked unit: one full PRE inference over a small plain Modbus trace.
    rng = Random(0)
    codec = WireCodec(modbus.request_graph(), seed=0)
    trace = [codec.serialize(modbus.realistic_request(rng, fc, tid))
             for tid, fc in enumerate((1, 3, 6, 16) * 2, start=1)]
    benchmark(lambda: infer_formats(trace))

    report = run_resilience(passes_levels=(1, 2), seed=0, repeats=3,
                            function_codes=(1, 3, 6, 16))
    rows = []
    for label, score in [("plain", report.plain),
                         ("1 obf/node", report.obfuscated[1]),
                         ("2 obf/node", report.obfuscated[2])]:
        rows.append([
            label,
            f"{score.boundary_f1:.3f}",
            f"{score.boundary_precision:.3f}",
            f"{score.boundary_recall:.3f}",
            f"{score.classification_purity:.2f}",
            f"{score.cluster_count}/{score.true_type_count}",
        ])
    print()
    print(render_table(
        ["Protocol version", "Boundary F1", "Precision", "Recall", "Purity",
         "Clusters/true types"],
        rows,
        title="Resilience — PRE inference quality (paper Sec. VII.D, quantified)",
    ))
    print(f"  relative F1 degradation: 1 obf/node = {report.degradation(1):.0%}, "
          f"2 obf/node = {report.degradation(2):.0%}")

    # Reproduced claim: inference quality collapses on the obfuscated protocol.
    assert report.plain.boundary_f1 > 0.35
    assert report.obfuscated[1].boundary_f1 < report.plain.boundary_f1
    assert report.obfuscated[2].boundary_f1 < 0.5 * report.plain.boundary_f1
    assert report.obfuscated[1].cluster_count > report.plain.cluster_count
