"""Plan replay suite — replay-vs-re-derive speedup and rotation throughput.

Two measurements of PR 5's plan layer, written to ``BENCH_PR5.json``:

* **replay speedup** — ``ExperimentRunner.run_level`` in engine mode (every
  run re-draws and re-validates an obfuscation with the engine) vs replay
  mode (``reuse_plan=True``: the level's plan is drawn once and every run
  deterministically replays it).  Replay skips the applicability scans, the
  RNG, the per-step graph validation and the per-run codec-plan compilation
  (replayed graphs share one fingerprint-keyed compiled plan), which is the
  experiment-harness payoff of plans being first-class artifacts.
* **rotation throughput** — messages/sec of an in-process obfuscated session
  that rotates through a 4-key plan book mid-stream, versus the same session
  pinned to its initial key: the cost of changing the shared secret while
  traffic flows.

Set ``BENCH_QUICK=1`` for the reduced CI smoke configuration.  Acceptance:
replay mode is no slower than engine mode on every protocol (geomean
speedup >= the configured floor) and every rotated session completes with
zero errors across >= 3 rotations.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import platform
import sys
import time
from pathlib import Path
from random import Random

from repro.experiments import ExperimentRunner
from repro.net import ObfuscatedClient, ObfuscatedServer, PlanBook, connect_memory, derive_session_key
from repro.protocols import mqtt, registry

QUICK = os.environ.get("BENCH_QUICK", "").lower() not in ("", "0", "false")

#: obfuscation level and runs per level of the runner comparison.
PASSES = 2
RUNS_PER_LEVEL = 4 if QUICK else 8
MESSAGES_PER_RUN = 4 if QUICK else 10

#: rotation throughput configuration.
ROTATIONS = 3
REQUESTS_PER_KEY = 8 if QUICK else 48

#: geomean replay speedup gate.  Replay removes engine work but keeps
#: codegen + measurement, so the floor is deliberately conservative (CI
#: machines are noisy); the dev-machine figure is reported in the JSON.
SPEEDUP_FLOOR = 1.0 if QUICK else 1.05

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_PR5.json"

_MQTT_REPLYING = (mqtt.PUBLISH_QOS0, mqtt.PUBLISH_QOS1, mqtt.PINGREQ)


def _request_message(key: str, rng: Random):
    if key == "mqtt":
        return mqtt.random_packet(rng, packet_type=rng.choice(_MQTT_REPLYING))
    return registry.get(key).message_generator(rng)


def _time_run_level(runner: ExperimentRunner) -> float:
    start = time.perf_counter()
    runner.run_level(PASSES)
    return time.perf_counter() - start


def _replay_cell(key: str) -> dict:
    engine = ExperimentRunner(key, seed=7, runs_per_level=RUNS_PER_LEVEL,
                              messages_per_run=MESSAGES_PER_RUN)
    replay = ExperimentRunner(key, seed=7, runs_per_level=RUNS_PER_LEVEL,
                              messages_per_run=MESSAGES_PER_RUN, reuse_plan=True)
    # Warm the shared reference measurements so both modes pay them equally.
    engine.reference_potency()
    replay._reference = engine._reference
    engine_s = _time_run_level(engine)
    replay_s = _time_run_level(replay)
    return {
        "protocol": key,
        "passes": PASSES,
        "runs_per_level": RUNS_PER_LEVEL,
        "engine_s": round(engine_s, 4),
        "replay_s": round(replay_s, 4),
        "speedup": round(engine_s / replay_s, 3),
    }


async def _rotation_cell(key: str, *, rotate: bool) -> dict:
    keys = [derive_session_key(key, passes=1, seed=seed)
            for seed in (10, 20, 30, 40)]
    server = ObfuscatedServer(key, plan_book=PlanBook(keys))
    client = connect_memory(
        ObfuscatedClient(key, plan_book=PlanBook(keys)), server)
    rng = Random(1)
    messages = 0
    start = time.perf_counter()
    for index, session_key in enumerate(keys):
        if rotate and index:
            await client.rotate(session_key.key_id)
        for _ in range(REQUESTS_PER_KEY):
            await client.send(_request_message(key, rng))
            reply = await client.receive()
            assert reply is not None, f"{key}: server closed mid-session"
            messages += 2
    elapsed = time.perf_counter() - start
    await client.close()
    stats = server.completed[0]
    assert stats.error is None, f"{key}: {stats.error}"
    assert stats.rotations == (ROTATIONS if rotate else 0)
    return {
        "protocol": key,
        "rotations": stats.rotations,
        "messages": messages,
        "elapsed_s": round(elapsed, 4),
        "msgs_per_sec": round(messages / elapsed, 1),
    }


def test_plan_replay_suite():
    replay_cells = [_replay_cell(key) for key in registry.available()]
    rotation_cells = []
    for key in registry.available():
        pinned = asyncio.run(_rotation_cell(key, rotate=False))
        rotated = asyncio.run(_rotation_cell(key, rotate=True))
        rotation_cells.append({
            "protocol": key,
            "pinned_msgs_per_sec": pinned["msgs_per_sec"],
            "rotated_msgs_per_sec": rotated["msgs_per_sec"],
            "rotations": rotated["rotations"],
            "messages": rotated["messages"],
            "rotation_overhead": round(
                pinned["msgs_per_sec"] / rotated["msgs_per_sec"], 3),
        })

    geomean = math.exp(sum(math.log(cell["speedup"]) for cell in replay_cells)
                       / len(replay_cells))

    report = {
        "meta": {
            "benchmark": "obfuscation-plan replay vs engine + rotation throughput",
            "quick": QUICK,
            "passes": PASSES,
            "runs_per_level": RUNS_PER_LEVEL,
            "messages_per_run": MESSAGES_PER_RUN,
            "requests_per_key": REQUESTS_PER_KEY,
            "speedup_floor": SPEEDUP_FLOOR,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "notes": (
                "speedup = wall-clock of ExperimentRunner.run_level in engine "
                "mode over replay mode (reuse_plan=True), identical runs-per-"
                "level and workload; rotation throughput counts both "
                "directions over the in-process transport, 4-key plan book, "
                "3 mid-stream rotations"
            ),
        },
        "replay": replay_cells,
        "replay_speedup_geomean": round(geomean, 3),
        "rotation": rotation_cells,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print()
    print(f"{'protocol':<8} {'engine_s':>9} {'replay_s':>9} {'speedup':>8}")
    for cell in replay_cells:
        print(f"{cell['protocol']:<8} {cell['engine_s']:>9.3f} "
              f"{cell['replay_s']:>9.3f} {cell['speedup']:>8.2f}")
    print(f"geomean replay speedup: {geomean:.2f}x")
    print(f"{'protocol':<8} {'pinned msg/s':>13} {'rotated msg/s':>14}")
    for cell in rotation_cells:
        print(f"{cell['protocol']:<8} {cell['pinned_msgs_per_sec']:>13.0f} "
              f"{cell['rotated_msgs_per_sec']:>14.0f}")
    print(f"report written to {OUTPUT}")

    assert geomean >= SPEEDUP_FLOOR, (
        f"replay geomean speedup {geomean:.2f}x under the "
        f"{SPEEDUP_FLOOR}x floor"
    )
    for cell in rotation_cells:
        assert cell["rotations"] == ROTATIONS
